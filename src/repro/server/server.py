"""The asyncio query server: NDJSON over TCP plus a thin HTTP/1.1 endpoint.

One listener serves both protocols — the first line of a connection is
sniffed: an HTTP request line (``POST /query HTTP/1.1``) routes to the
thin HTTP handler (one request, JSON body in, JSON body out, connection
closed); anything else is treated as the first line of an NDJSON protocol
stream (:mod:`repro.server.protocol`).

Concurrency model
-----------------

* The **event loop** owns all connection I/O, admission control, and
  tenant accounting.  It never executes a query.
* Queries run in a **worker thread pool** via ``run_in_executor`` — the
  engine is thread-safe by construction (locked plan cache, reentrant
  compiled plans, per-execution governors), which this server is the
  first component to drive with genuinely concurrent clients.
* Each request on a connection is dispatched as its **own task**, so a
  ``cancel`` op (or ``stats``) is processed while earlier queries are
  still executing.  Responses may therefore arrive out of request order;
  clients match on ``id``.
* **Cancellation is cooperative and strictly per-query**: every
  execution gets a fresh :class:`~repro.engine.governor.CancelToken`,
  registered in the session's in-flight table.  A ``cancel`` op or a
  client disconnect trips the token; the worker thread observes it at
  the next governor checkpoint and unwinds with ``QUERY_CANCELLED``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro import __version__
from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import PlanCache
from repro.data.database import Database
from repro.engine.governor import CancelToken
from repro.errors import QueryError
from repro.server.admission import (
    AdmissionController,
    ServerError,
    TenantAccount,
    TenantBudget,
)
from repro.server.metrics import ServerMetrics
from repro.server.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    decode_result,
    encode_message,
    encode_result,
    error_payload,
    http_status_for,
)
from repro.server.session import Session

__all__ = ["ReproServer", "ServerConfig", "ServerThread"]

_http_request_ids = itertools.count(1)

#: Bounds on the HTTP header section — without them a client could
#: stream header lines indefinitely and pin event-loop work.
_MAX_HEADER_LINES = 100
_MAX_HEADER_BYTES = 64 * 1024


@dataclass
class ServerConfig:
    """Everything a :class:`ReproServer` needs to run.

    ``options`` is the server-wide default option set; sessions may adjust
    the serving-relevant subset with the ``set`` op.  ``workers`` sizes
    the executor pool; ``max_inflight``/``queue_depth`` shape admission
    control (defaults: as many in flight as workers, twice that queued);
    ``tenant_budget`` is the serving budget applied to every tenant.
    """

    database: Database
    options: OptimizerOptions = field(default_factory=OptimizerOptions)
    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 8
    max_inflight: int | None = None
    queue_depth: int | None = None
    cache_size: int = 256
    tenant_budget: TenantBudget = field(default_factory=TenantBudget)
    #: Seconds a graceful close waits for in-flight queries to observe
    #: their cancelled tokens before giving up on them.
    drain_timeout: float = 5.0


class ReproServer:
    """The serving front-end (see the module docstring).

    Typical embedded use (tests, benchmarks)::

        server = ReproServer(ServerConfig(database=db, port=0))
        host, port = await server.start()
        ...
        await server.close()
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        # Derive the effective admission limits into instance attributes —
        # writing them back into ``config`` would make a ServerConfig
        # reused for a second server keep the first server's numbers.
        self.max_inflight = (
            config.max_inflight
            if config.max_inflight is not None
            else max(1, config.workers)
        )
        self.queue_depth = (
            config.queue_depth
            if config.queue_depth is not None
            else 2 * self.max_inflight
        )
        self.plan_cache = PlanCache(config.cache_size)
        self.admission = AdmissionController(
            self.max_inflight, self.queue_depth
        )
        self.metrics = ServerMetrics()
        self.accounts: dict[str, TenantAccount] = {}
        self.sessions: set[Session] = set()
        self.connections_total = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, config.workers),
            thread_name_prefix="repro-serve",
        )
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._closing = False
        # The shared session behind the thin HTTP endpoint: HTTP requests
        # are stateless, so they all compile through one session (and thus
        # the shared plan cache); per-request state (tokens) is keyed by a
        # server-assigned id.
        self._http_session = self._new_session()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, cancel in-flight queries,
        drain the worker pool."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self.sessions):
            session.cancel_all()
        self._http_session.cancel_all()
        if self._conn_tasks:
            _, pending = await asyncio.wait(
                self._conn_tasks, timeout=self.config.drain_timeout
            )
            # A client that never sends FIN would otherwise leave its
            # reader task to be torn down (noisily) with the loop.
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: self._pool.shutdown(wait=True)
        )

    # -- shared state --------------------------------------------------------

    def _new_session(self, tenant: str = "default") -> Session:
        session = Session(
            self.config.database,
            self.config.options,
            self.plan_cache,
            tenant=tenant,
        )
        session.account = self._account(tenant)
        return session

    def _account(self, tenant: str) -> TenantAccount:
        account = self.accounts.get(tenant)
        if account is None:
            account = TenantAccount(tenant, self.config.tenant_budget)
            self.accounts[tenant] = account
        return account

    def stats_snapshot(self) -> dict[str, Any]:
        """The ``stats`` payload: metrics, admission, cache, tenants."""
        cache_hits, cache_misses, cache_len = self.plan_cache.stats()
        return {
            "server": {
                "version": __version__,
                "sessions": len(self.sessions),
                "connections_total": self.connections_total,
                "workers": self.config.workers,
            },
            "metrics": self.metrics.snapshot(),
            "admission": self.admission.snapshot(),
            "plan_cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "entries": cache_len,
                "maxsize": self.plan_cache.maxsize,
            },
            "tenants": {
                tenant: account.snapshot()
                for tenant, account in sorted(self.accounts.items())
            },
        }

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.connections_total += 1
        try:
            try:
                first = await reader.readline()
            except (ValueError, ConnectionError):
                return
            if not first:
                return
            if _looks_like_http(first):
                await self._handle_http(first, reader, writer)
            else:
                await self._handle_ndjson(first, reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancelled us mid-read; finish cleanly so the
            # streams machinery doesn't log the cancellation.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- the NDJSON protocol -------------------------------------------------

    async def _handle_ndjson(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        session = self._new_session()
        self.sessions.add(session)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(message: dict[str, Any]) -> None:
            async with write_lock:
                if writer.is_closing():
                    return
                try:
                    writer.write(encode_message(message))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

        def dispatch(line: bytes) -> None:
            task = asyncio.ensure_future(
                self._dispatch(session, line, respond, writer)
            )
            tasks.add(task)
            task.add_done_callback(tasks.discard)

        try:
            dispatch(first_line)
            while not session.closed and not self._closing:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Line over the buffer limit: reject and drop the
                    # connection (recovery would need resynchronization).
                    await respond(
                        {
                            "id": None,
                            "ok": False,
                            "error": {
                                "code": "PROTOCOL_ERROR",
                                "message": "request line too long",
                            },
                        }
                    )
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                if line.strip():
                    dispatch(line)
        finally:
            # Disconnect cleanup: trip every in-flight token, then wait
            # for the dispatch tasks to settle (workers observe the
            # cancelled tokens at their next governor checkpoint).
            cancelled = session.cancel_all()
            if cancelled:
                self.metrics.record(
                    "disconnect_cancel", 0.0, ok=True, rows=0
                )
            if tasks:
                await asyncio.wait(
                    tasks, timeout=self.config.drain_timeout
                )
            self.sessions.discard(session)

    async def _dispatch(
        self,
        session: Session,
        line: bytes,
        respond: Any,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Parse and execute one request, always answering exactly once."""
        start = time.perf_counter()
        request_id: Any = None
        op = "?"
        try:
            message = decode_line(line)
            request_id = message.get("id")
            op = message.get("op")
            if not isinstance(op, str):
                raise ProtocolError("request needs a string 'op' field")
            payload = await self._perform(session, op, request_id, message)
        except Exception as exc:  # noqa: BLE001 - every failure becomes typed
            error = error_payload(exc)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.metrics.record(
                op if isinstance(op, str) else "?",
                elapsed_ms,
                ok=False,
                error_code=error["code"],
            )
            await respond({"id": request_id, "ok": False, "error": error})
            return
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.record(
            op,
            elapsed_ms,
            ok=True,
            rows=payload.get("rows", 0),
            nbytes=payload.get("bytes", 0),
            from_cache=payload.pop("_from_cache", None),
        )
        await respond({"id": request_id, "ok": True, **payload})
        if op == "close":
            session.closed = True

    async def _perform(
        self,
        session: Session,
        op: str,
        request_id: Any,
        message: dict[str, Any],
    ) -> dict[str, Any]:
        """Execute one op; returns the success payload (op-specific)."""
        if op == "hello":
            tenant = message.get("tenant", session.tenant)
            if not isinstance(tenant, str) or not tenant:
                raise ProtocolError("'tenant' must be a non-empty string")
            session.tenant = tenant
            session.account = self._account(tenant)
            return {
                "server": "repro",
                "version": __version__,
                "session": session.session_id,
                "tenant": tenant,
                "extents": sorted(self.config.database.extent_names()),
                "options": session.options_snapshot(),
            }
        if op == "query":
            source = message.get("q")
            if not isinstance(source, str):
                raise ProtocolError("'query' needs a string 'q' field")
            return await self._run_governed(
                session,
                request_id,
                lambda token: self._execute_source(
                    session, source, message.get("params"), token
                ),
            )
        if op == "prepare":
            name = message.get("name")
            source = message.get("q")
            if not isinstance(source, str):
                raise ProtocolError("'prepare' needs a string 'q' field")
            if not isinstance(name, str) or not name:
                raise ProtocolError("'prepare' needs a non-empty 'name'")
            loop = asyncio.get_running_loop()
            compiled, from_cache = await loop.run_in_executor(
                self._pool, session.prepare, name, source
            )
            return {
                "name": name,
                "params": sorted(compiled.param_names),
                "_from_cache": from_cache,
            }
        if op == "execute":
            name = message.get("name")
            if not isinstance(name, str) or not name:
                raise ProtocolError("'execute' needs a non-empty 'name'")
            compiled = session.statement(name)  # raises UNKNOWN_STATEMENT
            return await self._run_governed(
                session,
                request_id,
                lambda token: self._execute_prepared(
                    session, compiled, message.get("params"), token
                ),
            )
        if op == "cancel":
            target = message.get("target")
            return {"cancelled": session.cancel(target), "target": target}
        if op == "set":
            applied = session.set_options(message.get("options", {}))
            return {"applied": applied, "options": session.options_snapshot()}
        if op == "stats":
            return {"stats": self.stats_snapshot()}
        if op == "close":
            return {"bye": True}
        exc = ProtocolError(f"unknown operation {op!r}")
        exc.code = "UNKNOWN_OPERATION"
        raise exc

    # -- query execution -----------------------------------------------------

    async def _run_governed(
        self,
        session: Session,
        request_id: Any,
        run: Any,
        account: TenantAccount | None = None,
    ) -> dict[str, Any]:
        """Admission + tenant budget + worker-pool execution of one query."""
        account = account or session.account or self._account(session.tenant)
        account.admit()  # typed TENANT_BUDGET_EXHAUSTED before any work
        # Register before admission: a duplicate id is rejected up front
        # (DUPLICATE_REQUEST_ID), and a query waiting in the admission
        # queue is already cancellable / covered by disconnect cleanup.
        token = session.register(request_id)
        loop = asyncio.get_running_loop()
        try:
            await self.admission.acquire()
            start = time.perf_counter()
            payload: dict[str, Any] | None = None
            try:
                payload = await loop.run_in_executor(self._pool, run, token)
                return payload
            finally:
                self.admission.release()
                wall_ms = (time.perf_counter() - start) * 1000.0
                # Failed queries still spend the wall clock they consumed.
                account.charge(
                    wall_ms,
                    payload.get("rows", 0) if payload else 0,
                    payload.get("bytes", 0) if payload else 0,
                )
        finally:
            session.settle(request_id)

    def _execute_source(
        self,
        session: Session,
        source: str,
        params: Any,
        token: CancelToken,
    ) -> dict[str, Any]:
        """Worker-thread body for the ``query`` op."""
        compiled, from_cache = session.pipeline.compile_oql_cached(source)
        return self._execute_compiled(session, compiled, params, token, from_cache)

    def _execute_prepared(
        self,
        session: Session,
        compiled: Any,
        params: Any,
        token: CancelToken,
    ) -> dict[str, Any]:
        """Worker-thread body for the ``execute`` op (always a cached plan)."""
        return self._execute_compiled(session, compiled, params, token, True)

    def _execute_compiled(
        self,
        session: Session,
        compiled: Any,
        params: Any,
        token: CancelToken,
        from_cache: bool,
    ) -> dict[str, Any]:
        values = _decode_params(params)
        start = time.perf_counter()
        result = compiled.execute(
            self.config.database, cancel_token=token, **values
        )
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        encoded = encode_result(result)
        try:
            rows = len(result)
        except TypeError:
            rows = 1
        nbytes = len(json.dumps(encoded, separators=(",", ":")))
        return {
            "result": encoded,
            "rows": rows,
            "bytes": nbytes,
            "elapsed_ms": round(elapsed_ms, 3),
            "_from_cache": from_cache,
        }

    # -- the thin HTTP endpoint ----------------------------------------------

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One-shot HTTP/1.1: ``POST /query`` and ``GET /stats``."""
        start = time.perf_counter()
        status, payload = await self._http_response(request_line, reader)
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 422: "Unprocessable Entity",
                  429: "Too Many Requests", 499: "Client Closed Request",
                  500: "Internal Server Error",
                  504: "Gateway Timeout"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        error = payload.get("error") if isinstance(payload, dict) else None
        self.metrics.record(
            "http",
            elapsed_ms,
            ok=error is None,
            error_code=error["code"] if error else None,
            rows=payload.get("rows", 0) if isinstance(payload, dict) else 0,
            nbytes=len(body),
        )
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    async def _http_response(
        self, request_line: bytes, reader: asyncio.StreamReader
    ) -> tuple[int, dict[str, Any]]:
        try:
            method, path, _ = request_line.decode("ascii").split(None, 2)
        except ValueError:
            return 400, _http_error("PROTOCOL_ERROR", "malformed request line")
        headers: dict[str, str] = {}
        header_bytes = 0
        for _ in range(_MAX_HEADER_LINES):
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                return 400, _http_error("PROTOCOL_ERROR", "bad headers")
            if line in (b"\r\n", b"\n", b""):
                break
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                return 400, _http_error(
                    "PROTOCOL_ERROR", "header section too large"
                )
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            # A client streaming header lines forever must not pin the
            # connection; each line is bounded, so bound the count too.
            return 400, _http_error("PROTOCOL_ERROR", "too many headers")
        if method == "GET" and path.rstrip("/") in ("", "/stats"):
            return 200, {"ok": True, "stats": self.stats_snapshot()}
        if method != "POST":
            return 405, _http_error(
                "PROTOCOL_ERROR", f"unsupported method {method}"
            )
        if path.rstrip("/") not in ("", "/query"):
            return 404, _http_error("PROTOCOL_ERROR", f"unknown path {path}")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, _http_error("PROTOCOL_ERROR", "bad Content-Length")
        if length <= 0 or length > MAX_LINE_BYTES:
            return 400, _http_error(
                "PROTOCOL_ERROR", "Content-Length required (JSON body)"
            )
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return 400, _http_error("PROTOCOL_ERROR", "truncated body")
        try:
            message = decode_line(body)
            source = message.get("q")
            if not isinstance(source, str):
                raise ProtocolError("body needs a string 'q' field")
            tenant = message.get("tenant", "default")
            if not isinstance(tenant, str) or not tenant:
                raise ProtocolError("'tenant' must be a non-empty string")
            session = self._http_session
            payload = await self._run_governed(
                session,
                ("http", next(_http_request_ids)),
                lambda token: self._execute_source(
                    session, source, message.get("params"), token
                ),
                account=self._account(tenant),
            )
        except Exception as exc:  # noqa: BLE001 - typed error responses
            error = error_payload(exc)
            return http_status_for(error), {"ok": False, "error": error}
        payload.pop("_from_cache", None)
        return 200, {"ok": True, **payload}


class ServerThread:
    """A :class:`ReproServer` on a background thread's own event loop.

    The embedded runner the tests and the load benchmark use: blocking
    clients on the calling thread(s), the server loop isolated on its own
    thread.  ``start()`` returns the bound address; ``stop()`` performs
    the graceful close and joins the thread.
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        self.server: ReproServer | None = None
        self._address: tuple[str, int] | None = None
        self._ready = None  # threading.Event, created in start()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = None
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover
            raise RuntimeError("server thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        assert self._address is not None
        return self._address

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self.server = ReproServer(self.config)
            self._address = await self.server.start()
        except BaseException as exc:  # pragma: no cover - startup bugs
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.close()

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()


def _http_error(code: str, message: str) -> dict[str, Any]:
    return {"ok": False, "error": {"code": code, "message": message}}


def _looks_like_http(first_line: bytes) -> bool:
    try:
        text = first_line.decode("ascii")
    except UnicodeDecodeError:
        return False
    parts = text.split()
    return (
        len(parts) == 3
        and parts[0] in ("GET", "POST", "PUT", "DELETE", "HEAD", "OPTIONS")
        and parts[2].startswith("HTTP/")
    )


def _decode_params(params: Any) -> dict[str, Any]:
    if params is None:
        return {}
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object of name -> value")
    return {name: decode_result(value) for name, value in params.items()}
