"""The wire protocol: newline-delimited JSON requests and responses.

Every message is one JSON object on one line (``\\n``-terminated).  A
request carries an ``op`` and a client-chosen ``id``; the response echoes
the ``id`` and carries either ``"ok": true`` with op-specific payload
fields or ``"ok": false`` with a typed ``error`` object::

    -> {"id": 1, "op": "query", "q": "select e.name from e in Employees"}
    <- {"id": 1, "ok": true, "result": {"$bag": [...]}, "rows": 60, ...}

    -> {"id": 2, "op": "query", "q": "select nope from x in Nope"}
    <- {"id": 2, "ok": false,
        "error": {"code": "UNKNOWN_EXTENT", "message": "...", "stage": "..."}}

Operations
----------

``hello``     declare a tenant (``tenant``) and fetch server info.
``query``     compile (through the shared plan cache) and run ``q`` with
              optional ``params``; responds with the encoded result.
``prepare``   compile ``q`` and register it under ``name`` in the session;
              responds with the statement's declared parameter names.
``execute``   run the prepared statement ``name`` with ``params``.
``cancel``    cancel the in-flight request whose id is ``target``.
``set``       update session-scoped options (governor limits, backend).
``stats``     server metrics snapshot (see :mod:`repro.server.metrics`).
``close``     say goodbye; the server closes the connection after replying.

Results are encoded with the same tagged-JSON value scheme the fuzzer's
repro artifacts use (:mod:`repro.testing.repro_io`): records become
``{"$record": {...}, "$oid": n}``, sets/bags/lists become
``{"$set"|"$bag"|"$list": [...]}``, NULL becomes ``{"$null": true}`` —
so a client can reconstruct engine values exactly, and the tests can
cross-check server responses against in-process execution value-for-value.

Error codes
-----------

Engine errors map 1:1 onto the :mod:`repro.errors` taxonomy; the serving
layer adds its own codes for failures that happen before a query reaches
the engine:

==========================  ====================================================
code                        meaning
==========================  ====================================================
``PLANNING_ERROR``          parse / translate / rewrite rejection
``TYPECHECK_ERROR``         T1–T9 violation
``UNKNOWN_EXTENT``          name did not resolve against the schema
``BACKEND_UNSUPPORTED``     the selected backend refuses the query/database
``EXECUTION_ERROR``         runtime failure in a well-typed plan
``QUERY_TIMEOUT``           governor wall-clock deadline exceeded
``BUDGET_EXCEEDED``         governor row/memory budget exceeded
``QUERY_CANCELLED``         cancel op, client disconnect, or token trip
``ADMISSION_REJECTED``      server saturated: in-flight limit and queue full
``TENANT_BUDGET_EXHAUSTED`` the session/tenant spent its serving budget
``PROTOCOL_ERROR``          malformed request (bad JSON, missing fields)
``UNKNOWN_OPERATION``       unrecognized ``op``
``UNKNOWN_STATEMENT``       ``execute`` names a statement never prepared
``DUPLICATE_REQUEST_ID``    a request id the session already has in flight
``INTERNAL_ERROR``          anything else (a server bug; never expected)
==========================  ====================================================
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import (
    BackendUnsupportedError,
    BudgetExceeded,
    ExecutionError,
    PlanningError,
    QueryCancelled,
    QueryError,
    QueryTimeout,
    TypeCheckError,
    UnknownExtentError,
)
from repro.testing.repro_io import _decode_value, _encode_value

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "decode_line",
    "decode_result",
    "encode_message",
    "encode_result",
    "error_payload",
    "http_status_for",
]

#: The longest request line the server will buffer before rejecting the
#: connection — a malformed client must not balloon server memory.
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed request: bad JSON, a non-object, or missing fields."""

    code = "PROTOCOL_ERROR"


def encode_message(message: dict[str, Any]) -> bytes:
    """One protocol message as an NDJSON line (UTF-8, ``\\n``-terminated)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` when invalid."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(message).__name__}"
        )
    return message


def encode_result(value: Any) -> Any:
    """An engine value as tagged JSON (records/sets/bags/lists/NULL)."""
    return _encode_value(value)


def decode_result(data: Any) -> Any:
    """The inverse of :func:`encode_result`: tagged JSON back to values."""
    return _decode_value(data)


#: QueryError subclass -> protocol error code, most specific first.
_ERROR_CODES: tuple[tuple[type, str], ...] = (
    (QueryTimeout, "QUERY_TIMEOUT"),
    (BudgetExceeded, "BUDGET_EXCEEDED"),
    (QueryCancelled, "QUERY_CANCELLED"),
    (TypeCheckError, "TYPECHECK_ERROR"),
    (UnknownExtentError, "UNKNOWN_EXTENT"),
    (BackendUnsupportedError, "BACKEND_UNSUPPORTED"),
    (ExecutionError, "EXECUTION_ERROR"),
    (PlanningError, "PLANNING_ERROR"),
)


def error_payload(exc: BaseException) -> dict[str, Any]:
    """The typed ``error`` object for an exception.

    Engine errors keep their structured context (stage, operator); serving
    errors (:class:`~repro.server.admission.ServerError`,
    :class:`ProtocolError`) carry the code they declare.  Anything else is
    an ``INTERNAL_ERROR`` — the catch-all that should never fire.
    """
    code = getattr(exc, "code", None)
    if isinstance(exc, QueryError):
        for cls, query_code in _ERROR_CODES:
            if isinstance(exc, cls):
                code = query_code
                break
        else:  # pragma: no cover - QueryError itself is never raised bare
            code = "EXECUTION_ERROR"
        payload: dict[str, Any] = {"code": code, "message": exc.message}
        if exc.stage is not None:
            payload["stage"] = exc.stage
        if exc.operator is not None:
            payload["operator"] = exc.operator
        return payload
    if isinstance(code, str):
        return {"code": code, "message": str(exc)}
    return {
        "code": "INTERNAL_ERROR",
        "message": f"{type(exc).__name__}: {exc}",
    }


#: Protocol error code -> HTTP status for the thin HTTP endpoint.
_HTTP_STATUS = {
    "PLANNING_ERROR": 400,
    "TYPECHECK_ERROR": 400,
    "UNKNOWN_EXTENT": 400,
    "BACKEND_UNSUPPORTED": 400,
    "PROTOCOL_ERROR": 400,
    "UNKNOWN_OPERATION": 400,
    "UNKNOWN_STATEMENT": 400,
    "DUPLICATE_REQUEST_ID": 400,
    "ADMISSION_REJECTED": 429,
    "TENANT_BUDGET_EXHAUSTED": 429,
    "QUERY_TIMEOUT": 504,
    "QUERY_CANCELLED": 499,
    "BUDGET_EXCEEDED": 422,
    "EXECUTION_ERROR": 500,
    "INTERNAL_ERROR": 500,
}


def http_status_for(error: dict[str, Any] | None) -> int:
    """The HTTP status the thin endpoint sends for a response payload."""
    if error is None:
        return 200
    return _HTTP_STATUS.get(error.get("code", ""), 500)
