"""Connection sessions: the state one client holds between requests.

A session owns

* a :class:`~repro.core.pipeline.QueryPipeline` bound to the server's
  database but sharing the **server-wide plan cache** — so a statement
  prepared (or simply run) on one connection is a cache hit on every
  other connection with the same options;
* **session-scoped options**: per-query governor limits and the execution
  backend, adjustable with the ``set`` op (the options are part of the
  plan-cache key, so different sessions' settings never collide);
* **named prepared statements** (``prepare``/``execute``), which are
  plain :class:`~repro.core.pipeline.CompiledQuery` templates — reusable
  across any number of ``execute`` calls without recompilation;
* the **in-flight registry**: request id -> :class:`CancelToken` for
  every query this session currently has executing, which is what the
  ``cancel`` op and disconnect cleanup act on.  Tokens are strictly
  per-query: cancelling one request trips only that request's governor,
  never another session's (or even another request on the same session).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import replace
from typing import TYPE_CHECKING, Any

from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import CompiledQuery, PlanCache, QueryPipeline
from repro.data.database import Database
from repro.engine.governor import CancelToken
from repro.server.protocol import ProtocolError

if TYPE_CHECKING:
    from repro.server.admission import TenantAccount

__all__ = ["MAX_SESSION_WORKERS", "SESSION_OPTION_NAMES", "Session"]

_session_ids = itertools.count(1)

#: The options a session may change with the ``set`` op.  Deliberately the
#: serving-relevant subset: governor limits, the backend pair, and the
#: parallel-execution switches.  Structural phase switches (unnest,
#: simplify, ...) stay server-side — and so does ``db_path``: it flows
#: into ``sqlite3.connect()``, so a client that could set it would make
#: the server create or open an arbitrary filesystem path.  The sqlite
#: backend always uses the server-configured path (``--db-path``).
SESSION_OPTION_NAMES = frozenset(
    {
        "timeout",
        "max_rows",
        "max_bytes",
        "backend",
        "parallel",
        "num_workers",
    }
)

#: Hard ceiling on client-requested ``num_workers`` — a session must not
#: be able to make the server spawn an unbounded thread pool.  0 means
#: "auto" (the engine picks a small host-appropriate count).
MAX_SESSION_WORKERS = 8


class Session:
    """One connection's serving state (see the module docstring)."""

    def __init__(
        self,
        database: Database,
        options: OptimizerOptions,
        plan_cache: PlanCache,
        tenant: str = "default",
    ):
        self.session_id = next(_session_ids)
        self.tenant = tenant
        self.pipeline = QueryPipeline(database, options)
        # Share the server-wide cache: prepared statements and plain
        # queries hit across connections.  (The cache key includes the
        # options, so sessions with different settings coexist.)
        self.pipeline.plan_cache = plan_cache
        self.prepared: dict[str, CompiledQuery] = {}
        #: request id -> CancelToken for queries currently executing.
        #: Written from the event loop, read from worker threads and the
        #: disconnect path, so guard with a lock.
        self._inflight: dict[Any, CancelToken] = {}
        self._inflight_lock = threading.Lock()
        #: Filled in by the server once the tenant is known (``hello``).
        self.account: "TenantAccount | None" = None
        self.closed = False

    # -- options -------------------------------------------------------------

    def set_options(self, updates: dict[str, Any]) -> dict[str, Any]:
        """Apply ``set`` op updates to the session's options.

        Returns the applied mapping.  Unknown names and un-settable
        options raise :class:`ProtocolError` without changing anything.
        """
        if not isinstance(updates, dict) or not updates:
            raise ProtocolError("'set' expects a non-empty 'options' object")
        unknown = set(updates) - SESSION_OPTION_NAMES
        if unknown:
            raise ProtocolError(
                f"unknown session option(s) {sorted(unknown)}; "
                f"settable: {sorted(SESSION_OPTION_NAMES)}"
            )
        if "backend" in updates and updates["backend"] not in (
            "memory",
            "sqlite",
        ):
            raise ProtocolError(
                f"unknown backend {updates['backend']!r}; "
                "expected 'memory' or 'sqlite'"
            )
        if "num_workers" in updates:
            workers = updates["num_workers"]
            if (
                isinstance(workers, bool)
                or not isinstance(workers, int)
                or not 0 <= workers <= MAX_SESSION_WORKERS
            ):
                raise ProtocolError(
                    f"'num_workers' must be an integer in "
                    f"[0, {MAX_SESSION_WORKERS}] (0 = auto), "
                    f"got {workers!r}"
                )
        try:
            self.pipeline.options = replace(self.pipeline.options, **updates)
        except TypeError as exc:  # pragma: no cover - names checked above
            raise ProtocolError(f"invalid session options: {exc}") from exc
        return dict(updates)

    def options_snapshot(self) -> dict[str, Any]:
        options = self.pipeline.options
        return {name: getattr(options, name) for name in sorted(SESSION_OPTION_NAMES)}

    # -- prepared statements -------------------------------------------------

    def prepare(self, name: str, source: str) -> tuple[CompiledQuery, bool]:
        """Compile *source* (through the shared plan cache) and register it
        under *name*; re-preparing a name replaces the old statement.
        Returns the statement and whether the plan came from the cache."""
        if not name or not isinstance(name, str):
            raise ProtocolError("'prepare' expects a non-empty string 'name'")
        compiled, from_cache = self.pipeline.compile_oql_cached(source)
        self.prepared[name] = compiled
        return compiled, from_cache

    def statement(self, name: str) -> CompiledQuery:
        compiled = self.prepared.get(name)
        if compiled is None:
            exc = ProtocolError(
                f"no prepared statement {name!r} in this session "
                f"(prepared: {sorted(self.prepared)})"
            )
            exc.code = "UNKNOWN_STATEMENT"
            raise exc
        return compiled

    # -- in-flight queries ---------------------------------------------------

    def register(self, request_id: Any) -> CancelToken:
        """A fresh per-request cancellation token, tracked until settled.

        A request id already in flight is rejected: silently overwriting
        the first token would leave one of the two queries invisible to
        ``cancel`` and disconnect cleanup (it would run to completion
        holding a worker slot)."""
        token = CancelToken()
        with self._inflight_lock:
            if request_id in self._inflight:
                exc = ProtocolError(
                    f"request id {request_id!r} is already in flight on "
                    "this session; concurrent requests need distinct ids"
                )
                exc.code = "DUPLICATE_REQUEST_ID"
                raise exc
            self._inflight[request_id] = token
        return token

    def settle(self, request_id: Any) -> None:
        """Drop the token for a finished request (idempotent)."""
        with self._inflight_lock:
            self._inflight.pop(request_id, None)

    def cancel(self, request_id: Any) -> bool:
        """Cancel one in-flight request; False when it is not in flight."""
        with self._inflight_lock:
            token = self._inflight.get(request_id)
        if token is None:
            return False
        token.cancel()
        return True

    def cancel_all(self) -> int:
        """Disconnect cleanup: cancel everything this session has running."""
        with self._inflight_lock:
            tokens = list(self._inflight.values())
        for token in tokens:
            token.cancel()
        return len(tokens)

    @property
    def inflight_count(self) -> int:
        with self._inflight_lock:
            return len(self._inflight)
