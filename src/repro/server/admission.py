"""Admission control and per-tenant budgets, layered on the governor.

The governor (:mod:`repro.engine.governor`) bounds *one* query.  A server
needs two more layers above it:

* **admission control** — at most ``max_inflight`` queries execute at
  once; up to ``queue_depth`` more wait in FIFO order; anything beyond
  that is rejected immediately with a typed ``ADMISSION_REJECTED`` error
  (shedding load at the door is what keeps tail latency bounded when
  demand exceeds capacity);
* **per-tenant budgets** — each tenant (named in the ``hello`` op;
  sessions that never say hello share the ``"default"`` tenant) gets a
  serving budget across *all* its queries: total wall-clock milliseconds,
  total rows returned, total encoded bytes.  A tenant that spends its
  budget gets ``TENANT_BUDGET_EXHAUSTED`` until the server restarts (or a
  new budget is configured) — per-query governor limits still apply on
  top, bounding each individual query.

Both layers live on the event loop (acquire/release and budget charging
happen in loop callbacks, never in worker threads), so the controller
needs no locks of its own: asyncio's single-threaded scheduling is the
synchronization.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ServerError",
    "TenantAccount",
    "TenantBudget",
    "TenantBudgetExhausted",
]


class ServerError(Exception):
    """A serving-layer failure with a typed protocol error code.

    Engine failures are :class:`~repro.errors.QueryError`; these are the
    errors that happen *around* the engine — saturation, exhausted serving
    budgets — and they carry their protocol code directly.
    """

    code = "INTERNAL_ERROR"


class AdmissionRejected(ServerError):
    """The server is saturated: every execution slot is busy and the wait
    queue is full.  Clients should back off and retry."""

    code = "ADMISSION_REJECTED"


class TenantBudgetExhausted(ServerError):
    """The session's tenant has spent its serving budget."""

    code = "TENANT_BUDGET_EXHAUSTED"


class AdmissionController:
    """A bounded execution gate: ``max_inflight`` slots, FIFO overflow
    queue of at most ``queue_depth`` waiters, typed rejection beyond that.

    Usage (event loop only)::

        await controller.acquire()   # may raise AdmissionRejected
        try:
            ... run the query in the worker pool ...
        finally:
            controller.release()
    """

    def __init__(self, max_inflight: int = 8, queue_depth: int = 16):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.inflight = 0
        #: Lifetime counters, surfaced in the metrics snapshot.
        self.admitted = 0
        self.queued_total = 0
        self.rejected = 0
        self._waiters: deque[asyncio.Future] = deque()

    @property
    def queued(self) -> int:
        """How many acquirers are currently waiting for a slot."""
        return len(self._waiters)

    async def acquire(self) -> None:
        """Take an execution slot, waiting in FIFO order when saturated.

        Raises :class:`AdmissionRejected` immediately when the wait queue
        is full — the caller never blocks on a rejection.
        """
        if self.inflight < self.max_inflight:
            self.inflight += 1
            self.admitted += 1
            return
        if len(self._waiters) >= self.queue_depth:
            self.rejected += 1
            raise AdmissionRejected(
                f"server saturated: {self.inflight} queries in flight "
                f"(max_inflight={self.max_inflight}) and "
                f"{len(self._waiters)} queued (queue_depth={self.queue_depth})"
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self.queued_total += 1
        try:
            await waiter
        except asyncio.CancelledError:
            # The request was abandoned (client disconnect) while queued.
            # If the slot was already handed over, pass it on.
            if waiter.cancelled():
                try:
                    self._waiters.remove(waiter)
                except ValueError:
                    pass
            elif waiter.done():
                self._handoff()
            raise
        self.admitted += 1

    def release(self) -> None:
        """Return a slot, waking the oldest waiter if any."""
        self._handoff()

    def _handoff(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                # The slot transfers directly: inflight stays constant.
                waiter.set_result(None)
                return
        self.inflight -= 1

    def snapshot(self) -> dict[str, int]:
        return {
            "max_inflight": self.max_inflight,
            "queue_depth": self.queue_depth,
            "inflight": self.inflight,
            "queued": self.queued,
            "admitted": self.admitted,
            "queued_total": self.queued_total,
            "rejected": self.rejected,
        }


@dataclass(frozen=True)
class TenantBudget:
    """The serving budget one tenant may spend, ``None`` = unlimited."""

    max_queries: int | None = None
    max_wall_ms: float | None = None
    max_rows: int | None = None
    max_bytes: int | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.max_queries is None
            and self.max_wall_ms is None
            and self.max_rows is None
            and self.max_bytes is None
        )


@dataclass
class TenantAccount:
    """One tenant's running spend against its budget."""

    tenant: str
    budget: TenantBudget = field(default_factory=TenantBudget)
    queries: int = 0
    wall_ms: float = 0.0
    rows: int = 0
    bytes: int = 0

    def admit(self) -> None:
        """Check the budget before running another query for this tenant."""
        budget = self.budget
        if budget.unlimited:
            return
        exhausted: str | None = None
        if budget.max_queries is not None and self.queries >= budget.max_queries:
            exhausted = f"{self.queries} queries (max {budget.max_queries})"
        elif budget.max_wall_ms is not None and self.wall_ms >= budget.max_wall_ms:
            exhausted = (
                f"{self.wall_ms:.0f} ms wall clock (max {budget.max_wall_ms:.0f})"
            )
        elif budget.max_rows is not None and self.rows >= budget.max_rows:
            exhausted = f"{self.rows} rows (max {budget.max_rows})"
        elif budget.max_bytes is not None and self.bytes >= budget.max_bytes:
            exhausted = f"{self.bytes} bytes (max {budget.max_bytes})"
        if exhausted is not None:
            raise TenantBudgetExhausted(
                f"tenant {self.tenant!r} exhausted its serving budget: "
                f"{exhausted}"
            )

    def charge(self, wall_ms: float, rows: int, nbytes: int) -> None:
        """Record one finished query's spend (failed queries still spend
        the wall clock they consumed)."""
        self.queries += 1
        self.wall_ms += wall_ms
        self.rows += rows
        self.bytes += nbytes

    def snapshot(self) -> dict[str, Any]:
        return {
            "queries": self.queries,
            "wall_ms": round(self.wall_ms, 3),
            "rows": self.rows,
            "bytes": self.bytes,
        }
