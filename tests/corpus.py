"""The shared query corpus used by integration, property, and bench tests.

Each entry pairs an OQL query with the database family it runs on.  The
corpus covers every nesting class the paper discusses: flat queries (Kim's
class A-free), type-N and type-J nesting (handled by normalization), and
type-A / type-JA nesting (aggregates and quantifiers, which need
outer-joins and grouping), plus group-by queries for the Section 5
simplification.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusQuery:
    name: str
    family: str  # "company" | "university" | "travel" | "ab"
    oql: str
    description: str = ""


CORPUS: list[CorpusQuery] = [
    # ---- the paper's own queries -------------------------------------------------
    CorpusQuery(
        "query_a",
        "company",
        "select distinct struct( E: e.name, C: c.name ) "
        "from e in Employees, c in e.children",
        "Paper QUERY A: flat select over an extent and a nested collection",
    ),
    CorpusQuery(
        "query_b",
        "company",
        "select distinct struct( D: d, E: ( select distinct e "
        "from e in Employees where e.dno = d.dno ) ) from d in Departments",
        "Paper QUERY B: nested select in the head (type-JA)",
    ),
    CorpusQuery(
        "query_d",
        "company",
        "select distinct struct( E: e, M: count( select distinct c "
        "from c in e.children where for all d in e.manager.children: "
        "c.age > d.age ) ) from e in Employees",
        "Paper QUERY D: double nesting, count + universal quantification",
    ),
    CorpusQuery(
        "query_e",
        "university",
        'select distinct s from s in Student '
        'where for all c in ( select c from c in Courses where c.title = "DB" ): '
        "exists t in Transcript: (t.id = s.id and t.cno = c.cno)",
        "Paper QUERY E: students who took all DB courses",
    ),
    CorpusQuery(
        "hotels",
        "travel",
        "select distinct hotel.price from hotel in ( select h "
        'from c in Cities, h in c.hotels where c.name = "Arlington" ) '
        "where (exists r in hotel.rooms: r.bed_num = 3) "
        "and hotel.name in ( select t.name from s in States, "
        't in s.attractions where s.name = "Texas" )',
        "Paper Section 2 normalization example",
    ),
    CorpusQuery(
        "group_avg",
        "company",
        "select distinct e.dno, avg(e.salary) as S from Employees e "
        "where e.age > 30 group by e.dno",
        "Paper Section 5 group-by example (Figure 8)",
    ),
    # ---- flat / normalization-only -------------------------------------------------
    CorpusQuery(
        "flat_select",
        "company",
        "select distinct e.name from e in Employees where e.salary > 70000",
    ),
    CorpusQuery(
        "flat_bag",
        "company",
        "select e.dno from e in Employees",
        "bag (non-distinct) projection with duplicates",
    ),
    CorpusQuery(
        "flat_join",
        "university",
        "select distinct struct(S: s.name, C: c.title) "
        "from s in Student, t in Transcript, c in Courses "
        'where s.id = t.id and t.cno = c.cno and c.title = "DB"',
        "three-way equi-join chain (exercises join reordering)",
    ),
    CorpusQuery(
        "type_n_nesting",
        "travel",
        "select distinct h.name from h in ( select h from c in Cities, "
        "h in c.hotels where h.price < 150 )",
        "type-N nesting: generator over a subquery (normalized away)",
    ),
    CorpusQuery(
        "type_j_nesting",
        "university",
        "select distinct s.name from s in Student "
        "where s.id in ( select t.id from t in Transcript where t.cno = 0 )",
        "type-J nesting: membership in a correlated-free subquery",
    ),
    # ---- aggregates ---------------------------------------------------------------
    CorpusQuery(
        "agg_count_extent",
        "company",
        "count( select e from e in Employees where e.age > 40 )",
        "top-level aggregate query",
    ),
    CorpusQuery(
        "agg_sum_nested",
        "company",
        "select distinct struct( D: d.dno, T: sum( select e.salary "
        "from e in Employees where e.dno = d.dno ) ) from d in Departments",
        "type-A nesting: correlated aggregate in the head",
    ),
    CorpusQuery(
        "agg_max_pred",
        "company",
        "select distinct e.name from e in Employees "
        "where e.salary >= max( select u.salary from u in Employees "
        "where u.dno = e.dno )",
        "correlated aggregate in the predicate (type-JA)",
    ),
    CorpusQuery(
        "agg_avg_compare",
        "company",
        "select distinct e.name from e in Employees "
        "where e.salary > avg( select u.salary from u in Employees )",
        "uncorrelated aggregate in the predicate (computed once)",
    ),
    CorpusQuery(
        "agg_min_top",
        "university",
        "min( select t.grade from t in Transcript )",
    ),
    CorpusQuery(
        "count_children",
        "company",
        "select distinct struct( N: e.name, K: count( select c "
        "from c in e.children ) ) from e in Employees",
        "count over a path collection",
    ),
    # ---- quantifiers ----------------------------------------------------------------
    CorpusQuery(
        "exists_simple",
        "company",
        "select distinct e.name from e in Employees "
        "where exists c in e.children: c.age > 10",
    ),
    CorpusQuery(
        "forall_simple",
        "company",
        "select distinct e.name from e in Employees "
        "where for all c in e.children: c.age < 15",
        "universal quantification over a path (vacuously true allowed)",
    ),
    CorpusQuery(
        "not_exists",
        "company",
        "select distinct e.name from e in Employees "
        "where not exists c in e.children: c.age >= 9",
        "negated existential (DeMorgan → universal)",
    ),
    CorpusQuery(
        "ab_subset",
        "ab",
        "for all a in A: exists b in B: a = b",
        "Paper QUERY C: A ⊆ B as a top-level boolean query",
    ),
    CorpusQuery(
        "nested_quantifiers",
        "university",
        "select distinct c.title from c in Courses "
        "where for all t in Transcript: (t.cno != c.cno or t.grade >= 2)",
        "universal quantifier with a disjunctive body",
    ),
    # ---- deeper / mixed nesting ------------------------------------------------------
    CorpusQuery(
        "nested_in_nested",
        "company",
        "select distinct struct( D: d.name, Rich: ( select e.name "
        "from e in Employees where e.dno = d.dno and e.salary > "
        "avg( select u.salary from u in Employees where u.dno = d.dno ) ) ) "
        "from d in Departments",
        "aggregate nested inside a nested select",
    ),
    CorpusQuery(
        "head_and_pred_nesting",
        "company",
        "select distinct struct( N: e.name, K: count( select c from c in "
        "e.children ) ) from e in Employees where exists c in e.children: "
        "c.age > 5",
        "nesting in both head and predicate",
    ),
    CorpusQuery(
        "double_correlated",
        "university",
        "select distinct s.name from s in Student where count( select t "
        "from t in Transcript where t.id = s.id ) >= 2",
        "correlated count compared to a constant (the count-bug shape)",
    ),
    CorpusQuery(
        "count_bug_zero",
        "university",
        "select distinct s.name from s in Student where count( select t "
        "from t in Transcript where t.id = s.id and t.cno = 999 ) = 0",
        "the classic count bug: students with zero matches must appear",
    ),
    CorpusQuery(
        "group_count",
        "company",
        "select distinct e.dno, count(e) as headcount from Employees e "
        "group by e.dno",
    ),
    CorpusQuery(
        "group_having",
        "company",
        "select e.dno, max(e.salary) as top from Employees e "
        "group by e.dno having count(e) > 2",
        "group-by with HAVING",
    ),
    CorpusQuery(
        "struct_agg_mix",
        "company",
        "select distinct struct( D: d.dno, B: d.budget, "
        "C: count( select e from e in Employees where e.dno = d.dno ) ) "
        "from d in Departments where d.budget > 200000",
    ),
    CorpusQuery(
        "arith_in_head",
        "company",
        "select distinct struct( N: e.name, Y: e.salary / 12 + 100 ) "
        "from e in Employees where e.age * 2 >= 60",
        "arithmetic in head and predicate",
    ),
    CorpusQuery(
        "uncorrelated_subquery_pred",
        "university",
        "select distinct s.name from s in Student where exists c in ( "
        'select c from c in Courses where c.title = "DB" ): true',
        "uncorrelated existential over a subquery",
    ),
    # ---- harder shapes ---------------------------------------------------------
    CorpusQuery(
        "triple_nesting",
        "company",
        "select distinct e.name from e in Employees "
        "where count( select c from c in e.children where c.age > "
        "min( select d.age from d in e.manager.children ) ) >= 1",
        "aggregate inside an aggregate's predicate (three levels)",
    ),
    CorpusQuery(
        "quantifier_over_subquery_with_agg",
        "company",
        "select distinct d.name from d in Departments "
        "where for all e in ( select e from e in Employees "
        "where e.dno = d.dno ): e.salary < d.budget",
        "universal quantifier whose domain is a correlated subquery",
    ),
    CorpusQuery(
        "exists_nonempty_form",
        "company",
        "select distinct d.name from d in Departments "
        "where exists( select e from e in Employees where e.dno = d.dno )",
        "the exists(query) non-emptiness form",
    ),
    CorpusQuery(
        "membership_of_computed_value",
        "company",
        "select distinct e.name from e in Employees "
        "where e.dno in ( select d.dno from d in Departments "
        "where d.budget > 300000 )",
    ),
    CorpusQuery(
        "flatten_paths",
        "travel",
        "select distinct r.bed_num from r in flatten( select h.rooms "
        "from c in Cities, h in c.hotels )",
        "flatten over a two-generator subquery",
    ),
    CorpusQuery(
        "nested_count_comparison",
        "university",
        "select distinct s.name from s in Student "
        "where count( select t from t in Transcript where t.id = s.id ) > "
        "count( select t from t in Transcript where t.id = 0 )",
        "two correlated/uncorrelated counts compared",
    ),
    CorpusQuery(
        "aggregate_of_aggregates",
        "company",
        "max( select count( select e from e in Employees "
        "where e.dno = d.dno ) from d in Departments )",
        "top-level max over per-group counts",
    ),
    CorpusQuery(
        "forall_implication_shape",
        "company",
        "select distinct e.name from e in Employees "
        "where for all c in e.children: (c.age < 5 or c.age > 8)",
        "disjunctive body under a universal quantifier",
    ),
    CorpusQuery(
        "double_membership",
        "university",
        "select distinct c.title from c in Courses "
        "where c.cno in ( select t.cno from t in Transcript ) "
        "and c.cno in ( select t.cno from t in Transcript where t.grade >= 3 )",
        "two membership predicates on the same attribute",
    ),
    CorpusQuery(
        "avg_in_having",
        "company",
        "select e.dno, avg(e.age) as meanage from Employees e "
        "group by e.dno having avg(e.age) > 35",
        "HAVING over an avg aggregate",
    ),
    CorpusQuery(
        "constant_query",
        "company",
        "select distinct 1 from e in Employees",
        "constant head (result collapses to a singleton set)",
    ),
    CorpusQuery(
        "empty_result",
        "company",
        "select distinct e.name from e in Employees where e.age > 1000",
        "guaranteed-empty selection",
    ),
    CorpusQuery(
        "nested_struct_heads",
        "company",
        "select distinct struct( N: e.name, Kids: ( select struct( "
        "A: c.age, Older: for all d in e.manager.children: c.age >= d.age ) "
        "from c in e.children ) ) from e in Employees",
        "records inside a nested select inside a record",
    ),
    CorpusQuery(
        "bag_of_aggregates",
        "company",
        "select struct( D: e.dno, K: count( select c from c in e.children ) ) "
        "from e in Employees",
        "non-distinct projection carrying a per-object aggregate",
    ),
    # ---- set operations (union / except / intersect) -------------------------
    CorpusQuery(
        "setop_union",
        "university",
        "( select distinct s.id from s in Student where s.age > 25 ) union "
        "( select distinct t.id from t in Transcript where t.grade >= 3.5 )",
        "union of two projections",
    ),
    CorpusQuery(
        "setop_except",
        "university",
        "( select distinct s.id from s in Student ) except "
        "( select distinct t.id from t in Transcript )",
        "students with no transcript entries, as a set difference",
    ),
    CorpusQuery(
        "setop_intersect",
        "university",
        "( select distinct s.id from s in Student where s.age < 28 ) intersect "
        "( select distinct t.id from t in Transcript where t.grade >= 2 )",
        "intersection of two correlated-free projections",
    ),
    # ---- the auction family: a schema the paper never saw --------------------
    CorpusQuery(
        "auction_winners",
        "auction",
        "select distinct struct( I: i.title, Top: max( select b.amount "
        "from b in Bids where b.item = i.ino ) ) from i in Items "
        "where exists b in Bids: (b.item = i.ino and b.amount >= i.reserve)",
        "per-item top bid among items whose reserve was met",
    ),
    CorpusQuery(
        "auction_no_bids",
        "auction",
        "select distinct i.title from i in Items "
        "where count( select b from b in Bids where b.item = i.ino ) = 0",
        "items that received no bids (count-bug shape on a fresh schema)",
    ),
    CorpusQuery(
        "auction_power_bidders",
        "auction",
        "select distinct u.name from u in Users "
        "where for all b in ( select b from b in Bids where b.bidder = u.uno ): "
        "b.amount > 20",
        "universal quantifier over a correlated subquery",
    ),
    CorpusQuery(
        "auction_category_counts",
        "auction",
        "select distinct struct( C: c.name, N: count( select i from i in Items "
        "where exists k in i.categories: k.name = c.name ) ) "
        "from i0 in Items, c in i0.categories",
        "grouping via a nested-set attribute with an existential inside a count",
    ),
    CorpusQuery(
        "auction_big_spenders",
        "auction",
        "select distinct u.name, sum( select b.amount from b in Bids "
        "where b.bidder = u.uno ) as total from u in Users "
        "where u.rating >= 3",
        "correlated sum in a multi-item projection",
    ),
]


def corpus_by_name(name: str) -> CorpusQuery:
    for query in CORPUS:
        if query.name == name:
            return query
    raise KeyError(name)
