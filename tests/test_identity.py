"""Object identity: engine OIDs, identity-aware keys, and the operators
that use them.

The paper's OO model makes two objects with identical state distinct;
these tests pin the identity layer end to end — OID allocation in
``Database.adopt``, identity-preserving bags, identity-aware grouping and
join keys, persistence round trips — plus the satellite fixes that rode
along (merge-join NULL/mixed-key hardening, the cost model's ndv=0 guard,
and the lexer's comment/escape handling).
"""

from __future__ import annotations

import pytest

from repro.algebra.operators import Join, Reduce, Scan, Select
from repro.calculus.terms import BinOp, const, path
from repro.data.database import Database
from repro.data.schema import INT, CollectionType, RecordType, Schema
from repro.data.storage import load_database, save_database
from repro.data.values import (
    NULL,
    BagValue,
    Record,
    SetValue,
    has_identity,
    identity_eq,
    identity_key,
)
from repro.engine.cost import CostModel
from repro.engine.planner import PlannerOptions, execute
from repro.oql.lexer import OQLSyntaxError, tokenize
from repro.testing.oracle import check_sample
from repro.testing.repro_io import decode_sample, encode_sample


def _bag_duplicate_db() -> Database:
    """One set extent X and a bag extent Y holding two value-equal objects
    — the shape behind the formerly pinned divergence."""
    schema = Schema()
    schema.define_class(
        "C0", k=INT, kids=CollectionType("set", RecordType((("m", INT),)))
    )
    schema.define_class("C1", j=INT)
    schema.define_extent("X", "C0")
    schema.define_extent("Y", "C1")
    db = Database(schema)
    db.add_extent("X", [Record(k=1, kids=SetValue([Record(m=5)]))])
    db.add_extent("Y", [Record(j=1), Record(j=1)], kind="bag")
    return db


class TestAdoption:
    def test_every_stored_object_gets_a_unique_oid(self):
        db = Database()
        db.add_extent("E", [Record(x=1), Record(x=1), Record(x=2)], kind="bag")
        oids = [obj.oid for obj in db.extent("E").elements()]
        assert None not in oids
        assert len(oids) == len(set(oids)) == 3

    def test_nested_objects_are_stamped_too(self):
        db = Database()
        db.add_extent(
            "E",
            [Record(kids=BagValue([Record(m=1), Record(m=1)]))],
        )
        (parent,) = db.extent("E").elements()
        kid_oids = [kid.oid for kid in parent["kids"].elements()]
        assert parent.oid is not None
        assert None not in kid_oids
        assert len(set(kid_oids)) == 2  # value-equal twins stay distinct

    def test_existing_oids_are_preserved_and_allocator_advances(self):
        db = Database()
        db.add_extent("E", [Record(x=1).with_oid(17)])
        (obj,) = db.extent("E").elements()
        assert obj.oid == 17
        db.add_extent("F", [Record(y=2)])
        (other,) = db.extent("F").elements()
        assert other.oid == 18

    def test_literals_and_computed_records_stay_identity_free(self):
        assert Record(x=1).oid is None
        assert not has_identity(Record(x=1))
        stamped = Record(x=1).with_oid(3)
        # Derived values are new values, not the stored object.
        assert stamped.with_field("y", 2).oid is None


class TestIdentityHelpers:
    def test_value_equality_ignores_identity(self):
        assert Record(j=1).with_oid(0) == Record(j=1).with_oid(1) == Record(j=1)
        assert hash(Record(j=1).with_oid(0)) == hash(Record(j=1))

    def test_identity_key_distinguishes_stamped_twins(self):
        a, b = Record(j=1).with_oid(0), Record(j=1).with_oid(1)
        assert identity_key(a) != identity_key(b)
        assert identity_key(a) == identity_key(Record(j=1).with_oid(0))

    def test_identity_key_is_the_value_for_plain_values(self):
        for value in (3, "red", NULL, Record(x=1), SetValue([1, 2])):
            assert identity_key(value) is value

    def test_identity_key_recurses_through_containers(self):
        a, b = Record(j=1).with_oid(0), Record(j=1).with_oid(1)
        assert identity_key(SetValue([a])) != identity_key(SetValue([b]))
        assert identity_key(Record(kid=a)) != identity_key(Record(kid=b))

    def test_identity_eq_matches_oo_semantics(self):
        a, b = Record(j=1).with_oid(0), Record(j=1).with_oid(1)
        assert not identity_eq(a, b)
        assert identity_eq(a, a)
        # A literal twin of a stored object is not that object.
        assert not identity_eq(a, Record(j=1))
        # Scalars keep plain value equality (across the numeric tower).
        assert identity_eq(2, 2.0)


class TestBagIdentity:
    def test_bag_keeps_value_equal_distinct_objects(self):
        a, b = Record(j=1).with_oid(0), Record(j=1).with_oid(1)
        bag = BagValue([a, b])
        assert len(bag) == 2
        assert {obj.oid for obj in bag.elements()} == {0, 1}

    def test_public_interface_is_value_based(self):
        a, b = Record(j=1).with_oid(0), Record(j=1).with_oid(1)
        bag = BagValue([a, b])
        assert bag.count(Record(j=1)) == 2
        assert Record(j=1) in bag
        assert bag == BagValue([Record(j=1), Record(j=1)])
        assert hash(bag) == hash(BagValue([Record(j=1), Record(j=1)]))

    def test_additive_union_merges_by_identity(self):
        a, b = Record(j=1).with_oid(0), Record(j=1).with_oid(1)
        union = BagValue([a]).additive_union(BagValue([b]))
        assert len(union) == 2
        assert {obj.oid for obj in union.elements()} == {0, 1}


class TestQuerySemantics:
    def test_all_paths_agree_on_duplicate_bearing_bag(self):
        db = _bag_duplicate_db()
        source = (
            "select struct( A: ( select v2.m from v2 in v0.kids, v3 in Y ) ) "
            "from v0 in X, v1 in Y"
        )
        verdict = check_sample(source, {}, db)
        assert verdict.agreed, verdict.describe()
        # Two distinct Y objects => two outer rows, each with {{5, 5}}.
        result = verdict.reference.value
        assert len(result) == 2
        for row in result.elements():
            assert sorted(row["A"].elements()) == [5, 5]

    def test_nested_query_groups_per_object_not_per_value(self):
        db = _bag_duplicate_db()
        source = "select ( select y2.j from y2 in Y ) from y1 in Y"
        verdict = check_sample(source, {}, db)
        assert verdict.agreed, verdict.describe()
        assert len(verdict.reference.value) == 2

    def test_object_equality_in_queries_is_identity(self):
        db = _bag_duplicate_db()
        # Each Y object equals only itself, so the equi-self-join over the
        # two value-equal duplicates yields 2 pairs, not 4.
        source = "sum( select 1 from a in Y, b in Y where a = b )"
        verdict = check_sample(source, {}, db)
        assert verdict.agreed, verdict.describe()
        assert verdict.reference.value == 2


class TestPersistenceRoundTrip:
    def test_storage_preserves_identity(self, tmp_path):
        db = _bag_duplicate_db()
        path = tmp_path / "db.json"
        save_database(db, path)
        restored = load_database(path)
        original = sorted(obj.oid for obj in db.extent("Y").elements())
        reloaded = sorted(obj.oid for obj in restored.extent("Y").elements())
        assert reloaded == original
        assert len(restored.extent("Y")) == 2

    def test_repro_io_preserves_identity(self):
        db = _bag_duplicate_db()
        encoded = encode_sample("select y from y in Y", {}, db)
        _, _, decoded = decode_sample(encoded)
        original = sorted(obj.oid for obj in db.extent("Y").elements())
        reloaded = sorted(obj.oid for obj in decoded.extent("Y").elements())
        assert reloaded == original

    def test_identity_free_artifacts_get_fresh_distinct_oids(self):
        # Old artifacts (no $oid) must still load, with duplicates re-stamped
        # as distinct objects.
        db = _bag_duplicate_db()
        encoded = encode_sample("select y from y in Y", {}, db)
        for obj in encoded["extents"]["Y"]["objects"]:
            obj.pop("$oid", None)
        _, _, decoded = decode_sample(encoded)
        oids = [obj.oid for obj in decoded.extent("Y").elements()]
        assert None not in oids
        assert len(set(oids)) == 2


class TestMergeJoinHardening:
    def _count_join(self, db: Database, outer: bool = False):
        from repro.algebra.operators import OuterJoin

        join_cls = OuterJoin if outer else Join
        plan = Reduce(
            join_cls(
                Scan("L", "l"),
                Scan("R", "r"),
                BinOp("==", path("l", "k"), path("r", "k")),
            ),
            "sum",
            const(1),
        )
        return execute(plan, db, PlannerOptions(merge_joins=True))

    def test_null_right_keys_filtered_symmetrically(self):
        db = Database()
        db.add_extent("L", [Record(k=1), Record(k=NULL)])
        db.add_extent("R", [Record(k=1), Record(k=NULL), Record(k=NULL)])
        # NULL never equi-joins: exactly the 1=1 pair survives, and no
        # TypeError escapes from sorting unorderable NULL keys.
        assert self._count_join(db) == 1
        # Outer join still pads every unmatched left row (NULL key included).
        assert self._count_join(db, outer=True) == 2

    def test_mixed_type_keys_do_not_raise(self):
        db = Database()
        db.add_extent("L", [Record(k=1), Record(k="red")])
        db.add_extent("R", [Record(k="red"), Record(k=2), Record(k=1)])
        assert self._count_join(db) == 2

    def test_identity_keys_join_like_hash_join(self):
        db = Database()
        db.add_extent("L", [Record(k=Record(j=1)), Record(k=Record(j=1))], kind="bag")
        db.add_extent("R", [Record(k=Record(j=1))])
        merged = self._count_join(db)
        plan = Reduce(
            Join(
                Scan("L", "l"),
                Scan("R", "r"),
                BinOp("==", path("l", "k"), path("r", "k")),
            ),
            "sum",
            const(1),
        )
        assert merged == execute(plan, db)


class TestCostModelGuard:
    def test_zero_ndv_falls_back_to_default_selectivity(self):
        db = Database()
        db.add_extent("X", [])
        db.analyze()
        # An analyzed-but-empty extent can report ndv = 0; the estimate must
        # fall back to the textbook 0.1, not divide by zero.
        db._statistics[("X", "k")] = 0
        plan = Select(Scan("X", "v"), BinOp("==", path("v", "k"), const(1)))
        model = CostModel(db)
        assert model._selection_selectivity(plan) == pytest.approx(0.1)


class TestLexerRegressions:
    def test_line_comment_at_eof_without_newline(self):
        tokens = tokenize("select 1 from x in X -- trailing comment")
        assert tokens[-1].kind == "eof"
        assert all(t.kind != "symbol" or t.value != "-" for t in tokens)

    def test_string_escapes(self):
        (token, _) = tokenize(r'"a\"b\\c\nd\te\rf"')
        assert token.kind == "string"
        assert token.value == 'a"b\\c\nd\te\rf'

    def test_escaped_quote_does_not_terminate(self):
        (token, _) = tokenize(r'"say \"hi\""')
        assert token.value == 'say "hi"'

    def test_unterminated_string_raises(self):
        with pytest.raises(OQLSyntaxError, match="unterminated"):
            tokenize('"no closing quote')
        with pytest.raises(OQLSyntaxError, match="unterminated"):
            tokenize('"ends in backslash\\')

    def test_unknown_escape_raises(self):
        with pytest.raises(OQLSyntaxError, match="unknown string escape"):
            tokenize(r'"\q"')

    def test_pretty_printer_escapes_round_trip(self):
        from repro.oql.parser import parse
        from repro.oql.pretty import unparse

        source = r'select e from e in E where e.s = "a\"b\\c\nd"'
        printed = unparse(parse(source))
        assert parse(printed) == parse(source)
