"""Executable documentation: the README's and TUTORIAL's Python code blocks
must actually run (cumulatively, top to bottom, sharing one namespace)."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path: Path) -> list[str]:
    return _FENCE.findall(path.read_text())


@pytest.mark.parametrize(
    "document", ["README.md", "docs/TUTORIAL.md"], ids=lambda d: d
)
def test_python_blocks_execute(document):
    blocks = _python_blocks(ROOT / document)
    assert blocks, f"{document} has no python examples"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{document}[block {index}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"{document} block {index} failed: {exc}\n{block}")


def test_readme_mentions_the_paper():
    text = (ROOT / "README.md").read_text()
    assert "Fegaras" in text
    assert "SIGMOD 1998" in text


def test_docs_cross_reference_existing_files():
    for document in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        text = (ROOT / document).read_text()
        for match in re.finditer(r"\[[^\]]+\]\(([^)#\s]+)\)", text):
            target = match.group(1)
            if target.startswith("http"):
                continue
            assert (ROOT / target).exists(), f"{document} links to missing {target}"
