"""Unit tests for the unnesting algorithm (paper Section 4, Figure 7).

These tests pin the *plan shapes* of the paper's Figure 1 (queries A–E),
check which rules fire (the Figure 2 walkthrough), and exercise the
completeness corner cases: unnormalizable generator domains, uncorrelated
boxes, shared subqueries, and non-comprehension roots.
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import evaluate_plan
from repro.algebra.operators import Eval, Nest, OuterJoin, Reduce, operators
from repro.algebra.pretty import plan_signature
from repro.calculus.evaluator import evaluate
from repro.calculus.terms import (
    BinOp,
    Comprehension,
    Extent,
    Merge,
    comprehension,
    const,
    path,
    record,
    var,
)
from repro.core.unnesting import UnnestingTrace, unnest_query
from repro.data.datagen import ab_database, company_database, university_database


@pytest.fixture(scope="module")
def company():
    return company_database(num_employees=20, num_departments=5, seed=3)


@pytest.fixture(scope="module")
def university():
    return university_database(num_students=12, num_courses=7, seed=3)


def check(term, db, expected_signature=None, trace=None):
    plan = unnest_query(term, trace)
    assert evaluate_plan(plan, db) == evaluate(term, db)
    if expected_signature is not None:
        assert plan_signature(plan) == expected_signature
    return plan


# ---------------------------------------------------------------------------
# Figure 1: the paper's five plans
# ---------------------------------------------------------------------------


def query_a():
    return comprehension(
        "set",
        record(E=path("e", "name"), C=path("c", "name")),
        ("e", Extent("Employees")),
        ("c", path("e", "children")),
    )


def query_b():
    inner = comprehension(
        "set", var("e"), ("e", Extent("Employees")),
        BinOp("==", path("e", "dno"), path("d", "dno")),
    )
    return comprehension(
        "set", record(D=var("d"), E=inner), ("d", Extent("Departments"))
    )


def query_c():
    inner = comprehension(
        "some", const(True), ("b", Extent("B")), BinOp("==", var("a"), var("b"))
    )
    return comprehension("all", inner, ("a", Extent("A")))


def query_d():
    forall = comprehension(
        "all", BinOp(">", path("c", "age"), path("d", "age")),
        ("d", path("e", "manager", "children")),
    )
    count = comprehension("sum", const(1), ("c", path("e", "children")), forall)
    return comprehension(
        "set", record(E=var("e"), M=count), ("e", Extent("Employees"))
    )


def query_e():
    exists = comprehension(
        "some", const(True), ("t", Extent("Transcript")),
        BinOp("==", path("t", "id"), path("s", "id")),
        BinOp("==", path("t", "cno"), path("c", "cno")),
    )
    forall = comprehension(
        "all", exists, ("c", Extent("Courses")),
        BinOp("==", path("c", "title"), const("DB")),
    )
    return comprehension("set", var("s"), ("s", Extent("Student")), forall)


class TestFigure1:
    def test_query_a_shape(self, company):
        check(query_a(), company, "reduce(unnest(scan))")

    def test_query_b_shape(self, company):
        check(query_b(), company, "reduce(nest(outer-join(scan, scan)))")

    def test_query_c_shape(self):
        db = ab_database(6, 9, seed=3)
        plan = check(query_c(), db, "reduce(nest(outer-join(scan, scan)))")
        # and the subset case must come out true
        db_subset = ab_database(6, 9, subset=True, seed=3)
        assert evaluate_plan(plan, db_subset) is True

    def test_query_d_shape(self, company):
        check(
            query_d(),
            company,
            "reduce(nest(nest(outer-unnest(outer-unnest(scan)))))",
        )

    def test_query_e_shape(self, university):
        check(
            query_e(),
            university,
            "reduce(nest(nest(outer-join(outer-join(scan, scan), scan))))",
        )

    def test_query_d_null_conversion_order(self, company):
        """The paper's crucial detail: the inner (all) nest converts null d's
        and the outer (sum) nest converts null c's — not the other way."""
        plan = unnest_query(query_d())
        nests = [op for op in operators(plan) if isinstance(op, Nest)]
        assert len(nests) == 2
        outer_nest, inner_nest = nests  # pre-order: sum first, then all
        assert outer_nest.monoid_name == "sum"
        assert inner_nest.monoid_name == "all"
        # group-by of the sum nest is the employee variable only
        assert len(outer_nest.group_by) == 1
        assert len(inner_nest.group_by) == 2
        # each converts exactly the variable introduced inside its own box
        assert len(outer_nest.null_vars) == 1
        assert len(inner_nest.null_vars) == 1
        assert outer_nest.null_vars != inner_nest.null_vars


class TestTrace:
    def test_query_e_rules(self, university):
        trace = UnnestingTrace()
        check(query_e(), university, trace=trace)
        fired = trace.rules_fired()
        # outer scan, then the universal box (outer-join + nest), inside it
        # the existential box (outer-join + nest), finally the root reduce.
        assert fired.count("C1") == 1
        assert fired.count("C6") == 2
        assert fired.count("C5") == 2
        assert fired.count("C8") >= 1
        assert fired[-1] == "C2"

    def test_query_a_rules(self, company):
        trace = UnnestingTrace()
        check(query_a(), company, trace=trace)
        assert trace.rules_fired() == ["C1", "C4", "C2"]

    def test_query_d_rules(self, company):
        trace = UnnestingTrace()
        check(query_d(), company, trace=trace)
        fired = trace.rules_fired()
        assert fired.count("C7") == 2  # two outer-unnests
        assert fired.count("C5") == 2  # two nests
        assert "C9" in fired  # head splice
        assert str(trace)  # the walkthrough renders

    def test_trace_entries_carry_plans(self, company):
        trace = UnnestingTrace()
        check(query_b(), company, trace=trace)
        assert all(entry.plan is not None for entry in trace.entries)


class TestCompleteness:
    def test_uncorrelated_aggregate_spliced_once(self, company):
        """An inner comprehension with no free variables is computed once
        (spliced before any generator is consumed)."""
        avg_salary = comprehension(
            "avg", path("u", "salary"), ("u", Extent("Employees"))
        )
        term = comprehension(
            "set", path("e", "name"), ("e", Extent("Employees")),
            BinOp(">", path("e", "salary"), avg_salary),
        )
        plan = check(term, company)
        # the box is below the scan-join, evaluated on the seed stream
        nests = [op for op in operators(plan) if isinstance(op, Nest)]
        assert len(nests) == 1
        assert nests[0].group_by == ()

    def test_unflattenable_generator_domain(self, company):
        """A set comprehension feeding a sum: normalization must keep it
        nested and the unnester must still compile it (via a domain box)."""
        distinct_dnos = comprehension(
            "set", path("e", "dno"), ("e", Extent("Employees"))
        )
        term = comprehension("sum", var("d"), ("d", distinct_dnos))
        plan = check(term, company)
        assert isinstance(plan, Reduce)

    def test_merge_at_top_level(self, company):
        """N3 splits a conditional domain into a top-level Merge; the
        translator must produce an Eval root over two boxes."""
        from repro.calculus.terms import If

        # the condition must not be constant-foldable, so it is an
        # (uncorrelated) aggregate comparison
        any_employees = comprehension("sum", const(1), ("z", Extent("Employees")))
        term = comprehension(
            "set",
            path("x", "dno"),
            ("x", If(BinOp(">", any_employees, const(0)),
                     Extent("Employees"), Extent("Employees"))),
        )
        plan = unnest_query(term)
        assert isinstance(plan, Eval)
        assert evaluate_plan(plan, company) == evaluate(term, company)

    def test_deeply_nested_quantifiers(self, company):
        """Three levels of quantifier nesting."""
        innermost = comprehension(
            "some", BinOp(">", path("k2", "age"), path("k1", "age")),
            ("k2", path("m", "manager", "children")),
        )
        middle = comprehension(
            "all", innermost, ("k1", path("e", "children"))
        )
        term = comprehension(
            "set", path("e", "name"), ("e", Extent("Employees")),
            ("m", Extent("Employees")), middle,
        )
        check(term, company)

    def test_shared_subquery_computed_once(self, company):
        """The same inner comprehension used twice is spliced as one box."""
        total = comprehension("sum", path("u", "salary"), ("u", Extent("Employees")))
        term = comprehension(
            "set",
            BinOp("/", path("e", "salary"), total),
            ("e", Extent("Employees")),
            BinOp(">", BinOp("*", path("e", "salary"), const(2)), total),
        )
        plan = check(term, company)
        nests = [op for op in operators(plan) if isinstance(op, Nest)]
        assert len(nests) == 1


class TestFigure2Boxes:
    def test_boxes_compose(self, university):
        """The Figure 2 walkthrough: box C (existential) is embedded in box
        B (universal), which is embedded in box A (the outer reduce)."""
        plan = unnest_query(query_e())
        assert isinstance(plan, Reduce)
        outer_nest = plan.child
        assert isinstance(outer_nest, Nest) and outer_nest.monoid_name == "all"
        inner_nest = outer_nest.child
        assert isinstance(inner_nest, Nest) and inner_nest.monoid_name == "some"
        join_b = inner_nest.child
        assert isinstance(join_b, OuterJoin)
        join_a = join_b.left
        assert isinstance(join_a, OuterJoin)

    def test_outer_join_carries_equalities(self, university):
        """The unnested QUERY E gives both outer-joins equality predicates —
        the optimization the paper highlights."""
        from repro.engine.planner import split_equi_conjuncts

        plan = unnest_query(query_e())
        joins = [op for op in operators(plan) if isinstance(op, OuterJoin)]
        transcript_join = joins[0]
        keys, _ = split_equi_conjuncts(
            transcript_join.pred,
            transcript_join.left.columns(),
            transcript_join.right.columns(),
        )
        assert len(keys) == 2  # t.id = s.id and t.cno = c.cno
