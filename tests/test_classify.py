"""Tests for the nesting classifier (Kim's taxonomy, paper Section 2)."""

from __future__ import annotations

import pytest

from corpus import CORPUS, corpus_by_name
from repro.core.classify import CLASS_ORDER, classify, classify_oql
from repro.oql.translator import parse_and_translate


class TestBasicClasses:
    def test_flat(self):
        report = classify_oql("select distinct e.name from e in Employees")
        assert str(report) == "flat"
        assert report.dominant == "flat"
        assert not report.needs_grouping

    def test_type_n(self):
        report = classify_oql(
            "select distinct s.name from s in Student "
            "where s.id in ( select t.id from t in Transcript )"
        )
        assert "N" in report.classes
        assert not report.needs_grouping

    def test_type_j(self):
        report = classify_oql(
            "select distinct s.name from s in Student "
            "where exists t in Transcript: t.id = s.id"
        )
        assert "J" in report.classes
        assert not report.needs_grouping

    def test_type_a(self):
        report = classify_oql(
            "select distinct e.name from e in Employees "
            "where e.salary > avg( select u.salary from u in Employees )"
        )
        assert "A" in report.classes
        assert report.needs_grouping

    def test_type_ja(self):
        report = classify_oql(
            "select distinct e.name from e in Employees "
            "where e.salary >= max( select u.salary from u in Employees "
            "where u.dno = e.dno )"
        )
        assert "JA" in report.classes
        assert report.dominant == "JA"
        assert report.needs_grouping

    def test_universal_quantifier_is_aggregate_like(self):
        report = classify_oql(
            "select distinct e.name from e in Employees "
            "where for all c in e.children: c.age > 1"
        )
        assert report.needs_grouping

    def test_head_nesting_is_aggregate_like(self):
        """Any comprehension embedded in the head needs grouping — the
        paper's QUERY B discussion ("the computed set must be embedded in
        the result of every iteration")."""
        report = classify_oql(
            "select distinct struct( D: d, E: ( select e.name from e in "
            "Employees where e.dno = d.dno ) ) from d in Departments"
        )
        assert report.dominant == "JA"
        assert report.needs_grouping

    def test_mixed_classes_accumulate(self):
        report = classify_oql(
            "select distinct struct( K: count( select c from c in e.children ) ) "
            "from e in Employees "
            "where exists c in e.children: c.age > 1"
        )
        assert {"J", "JA"} <= report.classes
        assert report.dominant == "JA"

    def test_class_order_is_total(self):
        assert CLASS_ORDER == ("flat", "N", "J", "A", "JA")


class TestPaperClaim:
    """Section 2: "Our normalization algorithm unnests all type N and J
    nested queries" — after prepare(), N/J-only queries must be flat, while
    A/JA queries must still contain nesting."""

    @pytest.mark.parametrize(
        "name", ["type_n_nesting", "type_j_nesting", "exists_simple"]
    )
    def test_normalization_flattens_n_and_j(self, name, databases):
        from repro.core.normalization import prepare

        query = corpus_by_name(name)
        db = databases[query.family]
        term = parse_and_translate(query.oql, db.schema)
        assert not classify(term).needs_grouping
        assert classify(prepare(term)).dominant == "flat"

    @pytest.mark.parametrize("name", ["agg_max_pred", "query_b", "query_d"])
    def test_a_and_ja_survive_normalization(self, name, databases):
        from repro.core.normalization import prepare

        query = corpus_by_name(name)
        db = databases[query.family]
        term = parse_and_translate(query.oql, db.schema)
        assert classify(prepare(term)).dominant != "flat"

    def test_whole_corpus_classifies_without_error(self, databases):
        for query in CORPUS:
            db = databases[query.family]
            report = classify_oql(query.oql, db.schema)
            assert report.dominant in CLASS_ORDER
