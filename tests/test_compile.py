"""The expression compiler: compiled closures must be indistinguishable
from the tree-walking interpreter.

Four groups of guarantees:

* **Three-valued NULL logic** — a parametrized sweep over comparisons,
  arithmetic, the full ``and``/``or`` truth tables, ``if``, projections
  off NULL, and division by zero, each checked for exact agreement between
  the compiled closure and :class:`~repro.calculus.evaluator.Evaluator`
  (same value, or same exception class).  Every case runs through both
  tiers: the source-generation tier (the term as-is) and the
  closure-composition tier (the term wrapped in a ``Lambda`` application,
  which the source emitter does not handle).
* **Per-node fallback** — a residual comprehension subtree degrades that
  subtree to the interpreter, leaves the rest compiled, reports ``mixed``,
  and still produces the interpreter's value.
* **Blocking-operator memoization** — hash join, nested-loop join, and
  hash nest build their blocking side exactly once per execution even when
  their ``rows()`` stream is re-entered; the regression is pinned by
  counting the build child's ``rows_produced``.
* **EXPLAIN ANALYZE annotations** — per-operator ``eval_mode`` and
  ``eval_ms`` reporting, in both engine modes, including the rendered
  report text and the no-profiling default.
"""

from __future__ import annotations

import pytest

from repro.calculus.evaluator import EvaluationError, Evaluator
from repro.calculus.monoids import SET
from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Generator,
    If,
    IsNull,
    Lambda,
    Let,
    Not,
    Null,
    Proj,
    Var,
    path,
)
from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryPipeline
from repro.data.database import Database
from repro.data.values import NULL, Record, SetValue
from repro.engine.compile import CompiledExpr, ExprCompiler
from repro.engine.physical import (
    PHashJoin,
    PHashNest,
    PNestedLoopJoin,
    PScan,
    _Context,
)
from repro.testing.oracle import PATHS, check_sample

T, F, N = Const(True), Const(False), Null()
X = Var("x")


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.add_extent("R", [Record(k=i, v=i * 10) for i in range(6)])
    database.add_extent("S", [Record(k=i % 3, w=i) for i in range(6)])
    return database


def _engines(db):
    evaluator = Evaluator(db)
    compiler = ExprCompiler()
    compiler.activate(evaluator, db)
    return evaluator, compiler


def _outcome(fn):
    """(value, None) on success, (None, exception class) on failure."""
    try:
        return fn(), None
    except Exception as exc:  # noqa: BLE001 - errors are part of the contract
        return None, type(exc)


# ---------------------------------------------------------------------------
# Three-valued NULL logic: compiled == interpreted, on both tiers
# ---------------------------------------------------------------------------


def _null_cases() -> list:
    cases = []
    one = Const(1)
    for op in ("==", "!=", "<", "<=", ">", ">="):
        cases += [BinOp(op, N, one), BinOp(op, one, N), BinOp(op, N, N)]
    for op in ("+", "-", "*", "/"):
        cases += [BinOp(op, N, Const(2)), BinOp(op, Const(2), N)]
    for a in (T, F, N):
        for b in (T, F, N):
            cases += [BinOp("and", a, b), BinOp("or", a, b)]
    cases += [
        Not(N),
        IsNull(N),
        IsNull(Const(1)),
        If(N, Const(1), Const(2)),  # NULL condition takes the else branch
        Proj(N, "a"),  # path step off NULL is NULL
        Proj(Proj(X, "a"), "b"),  # x.a is NULL, so x.a.b is NULL
        BinOp("+", Proj(X, "n"), Const(1)),  # NULL attribute propagates
        Let("v", N, IsNull(Var("v"))),
        BinOp("/", Const(1), Const(0)),  # both engines raise EvaluationError
        BinOp("and", BinOp("==", Proj(X, "n"), Const(3)), F),
    ]
    return cases


_ENV = {"x": Record(a=NULL, n=NULL)}


@pytest.mark.parametrize("term", _null_cases(), ids=repr)
def test_null_semantics_match_interpreter(term, db):
    evaluator, compiler = _engines(db)
    expected = _outcome(lambda: evaluator.evaluate(term, dict(_ENV)))
    compiled = compiler.compile(term)
    assert compiled.mode == "compiled"
    assert _outcome(lambda: compiled(dict(_ENV))) == expected


@pytest.mark.parametrize("term", _null_cases(), ids=repr)
def test_null_semantics_match_on_closure_tier(term, db):
    # Wrapping in a Lambda application pushes the body outside the source
    # emitter's subset, so the whole term lowers via closure composition.
    wrapped = Apply(Lambda("_w", term), Const(0))
    evaluator, compiler = _engines(db)
    expected = _outcome(lambda: evaluator.evaluate(wrapped, dict(_ENV)))
    compiled = compiler.compile(wrapped)
    assert compiled.mode == "compiled"
    assert _outcome(lambda: compiled(dict(_ENV))) == expected


@pytest.mark.parametrize(
    "term, expected",
    [
        # Left-to-right short-circuit, strict NULL on the left operand:
        # the decided value wins before the NULL is ever looked at, but a
        # NULL left operand poisons the connective without evaluating the
        # right side (the interpreter's apply_binop semantics).
        (BinOp("and", F, N), False),
        (BinOp("and", T, N), NULL),
        (BinOp("and", N, F), NULL),
        (BinOp("or", T, N), True),
        (BinOp("or", F, N), NULL),
        (BinOp("or", N, T), NULL),
    ],
)
def test_connective_truth_table_pinned(term, expected, db):
    _, compiler = _engines(db)
    assert compiler.compile(term)({}) is expected


def test_predicate_treats_null_as_false(db):
    _, compiler = _engines(db)
    assert compiler.compile_predicate(BinOp("==", N, Const(1)))({}) is False
    assert compiler.compile_predicate(T)({}) is True
    with pytest.raises(EvaluationError):
        compiler.compile_predicate(Const(7))({})


# ---------------------------------------------------------------------------
# Per-node fallback and memoization
# ---------------------------------------------------------------------------


def test_residual_comprehension_falls_back_per_node(db):
    comp = Comprehension("sum", Var("v"), (Generator("v", Var("xs")),))
    term = BinOp("+", comp, Const(1))
    evaluator, compiler = _engines(db)
    env = {"xs": SetValue([1, 2, 3])}
    compiled = compiler.compile(term)
    assert compiled.mode == "mixed"
    assert compiled.fallback_nodes >= 1 and compiled.compiled_nodes >= 1
    assert compiled(dict(env)) == evaluator.evaluate(term, dict(env)) == 7


def test_memo_distinguishes_equal_constants_of_different_types(db):
    # Python's cross-type equality makes Const(True) == Const(1) ==
    # Const(1.0) with equal hashes; the memo must not serve one constant's
    # closure for another (fuzzer-found: a some-head Const(True) received
    # the closure of a sum-head Const(1), yielding a non-boolean predicate).
    _, compiler = _engines(db)
    assert compiler.compile(Const(1))({}) is not compiler.compile(T)({})
    assert compiler.compile(T)({}) is True
    assert compiler.compile(Const(1))({}) == 1
    assert type(compiler.compile(Const(1.0))({})) is float
    assert type(compiler.compile(Const(0))({})) is int
    assert compiler.compile(F)({}) is False


def test_compiled_terms_are_memoized_structurally(db):
    _, compiler = _engines(db)
    term = BinOp("==", path("r", "k"), Const(3))
    assert compiler.compile(term) is compiler.compile(term)
    # Value and predicate lowerings are distinct entries.
    assert compiler.compile(term) is not compiler.compile_predicate(term)


def test_compiled_query_reuses_one_compiler(db):
    pipeline = QueryPipeline(db)
    compiled = pipeline.compile_oql("select r.v from r in R where r.k > 2")
    assert compiled.expr_compiler() is compiled.expr_compiler()
    assert isinstance(compiled.expr_compiler(), ExprCompiler)


def test_no_compile_option_disables_the_compiler(db):
    pipeline = QueryPipeline(db, OptimizerOptions(compiled_exprs=False))
    compiled = pipeline.compile_oql("select r.v from r in R where r.k > 2")
    assert compiled.expr_compiler() is None
    assert compiled.execute(db) == QueryPipeline(db).run_oql(
        "select r.v from r in R where r.k > 2"
    )


# ---------------------------------------------------------------------------
# Blocking operators build exactly once per execution
# ---------------------------------------------------------------------------


def _exhaust_twice(op):
    return list(op.rows()), list(op.rows())


def test_hash_join_build_side_runs_once(db):
    context = _Context(db)
    left, right = PScan(context, "R", "r"), PScan(context, "S", "s")
    join = PHashJoin(
        context,
        left,
        right,
        (path("r", "k"),),
        (path("s", "k"),),
        Const(True),
        ("s",),
        False,
    )
    first, second = _exhaust_twice(join)
    assert len(first) == len(second) == 6
    # The build (right) side was scanned exactly once; the probe side re-ran.
    assert right.rows_produced == 6
    assert left.rows_produced == 12


def test_nested_loop_join_inner_runs_once(db):
    context = _Context(db)
    left, right = PScan(context, "R", "r"), PScan(context, "S", "s")
    join = PNestedLoopJoin(
        context,
        left,
        right,
        BinOp("==", path("r", "k"), path("s", "k")),
        ("s",),
        False,
    )
    first, second = _exhaust_twice(join)
    assert len(first) == len(second) == 6
    assert right.rows_produced == 6
    assert left.rows_produced == 12


def test_hash_nest_groups_built_once(db):
    context = _Context(db)
    child = PScan(context, "S", "s")
    nest = PHashNest(
        context, child, SET, path("s", "w"), ("s",), (), "ws", Const(True)
    )
    first, second = _exhaust_twice(nest)
    assert len(first) == len(second) == 6
    assert child.rows_produced == 6


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE annotations
# ---------------------------------------------------------------------------

_STATS_QUERY = "select e from e in Employees where e.salary > 30000"


class TestExplainAnalyzeAnnotations:
    def test_compiled_mode_and_eval_time_reported(self, company_db):
        stats = QueryPipeline(company_db).run_oql_stats(_STATS_QUERY)
        modes = {op.eval_mode for op in stats.operators}
        assert "compiled" in modes
        assert "" in modes  # scans evaluate no expressions
        assert any(op.eval_ms > 0 for op in stats.operators if op.eval_mode)

    def test_interpreted_mode_reported_when_compile_off(self, company_db):
        pipeline = QueryPipeline(
            company_db, OptimizerOptions(compiled_exprs=False)
        )
        stats = pipeline.run_oql_stats(_STATS_QUERY)
        modes = {op.eval_mode for op in stats.operators if op.eval_mode}
        assert modes == {"interpreted"}

    def test_report_renders_eval_columns(self, company_db):
        report = QueryPipeline(company_db).run_oql_stats(_STATS_QUERY).report()
        assert "exprs=compiled" in report
        assert "eval=" in report

    def test_unprofiled_execution_skips_eval_timers(self, company_db):
        compiled = QueryPipeline(company_db).compile_oql(_STATS_QUERY)
        physical = compiled.physical(company_db)
        physical.value()

        def walk(op):
            yield op
            for child in op.children():
                yield from walk(child)

        assert all(op.eval_ms == 0.0 for op in walk(physical))

    def test_paper_queries_fully_compiled(self, company_db):
        # Regression guard: the paper's flagship shapes must not silently
        # regress to interpreter fallback (e.g. a Term kind losing its
        # handler).  Any non-empty mode other than "compiled" is a bug.
        for source in (
            "select distinct struct( E: e.name, C: c.name ) "
            "from e in Employees, c in e.children",
            "select distinct struct( E: e, M: count( select distinct c "
            "from c in e.children where for all d in e.manager.children: "
            "c.age > d.age ) ) from e in Employees",
        ):
            stats = QueryPipeline(company_db).run_oql_stats(source)
            modes = {op.eval_mode for op in stats.operators if op.eval_mode}
            assert modes == {"compiled"}, source


# ---------------------------------------------------------------------------
# Differential wiring
# ---------------------------------------------------------------------------


def test_oracle_pins_interpreted_exprs_path():
    assert "pipeline-interpreted-exprs" in dict(PATHS)


def test_oracle_agreement_on_null_heavy_query(db):
    verdict = check_sample(
        "select r.v from r in R where r.k >= :low and r.k < :high",
        {"low": 1, "high": 4},
        db,
    )
    assert verdict.agreed, verdict.describe()
