"""Governor tests: timeouts, budgets, cancellation, and thread-safe serving.

The governor is the pipeline's resource-control layer: every limit must trip
*cooperatively* (mid-stream, from inside the iterator model), fail with a
structured GovernorError, and leave the pipeline fully usable — including
for other threads running queries against the same pipeline at that moment.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryPipeline
from repro.data.datagen import company_database
from repro.engine.governor import CancelToken, Governor, estimate_bytes
from repro.errors import (
    BudgetExceeded,
    GovernorError,
    QueryCancelled,
    QueryTimeout,
)


@pytest.fixture(scope="module")
def db():
    return company_database(num_employees=60, num_departments=8, seed=2)


CROSS = "select e.name from e in Employees, d in Departments"


class TestRowBudget:
    def test_trips_with_structured_error(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(max_rows=50))
        with pytest.raises(BudgetExceeded, match=r"max_rows=50"):
            pipeline.run_oql(CROSS)

    def test_trips_exactly_one_unit_over(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(max_rows=50))
        with pytest.raises(BudgetExceeded, match=r"51 work units"):
            pipeline.run_oql(CROSS)

    def test_generous_budget_does_not_trip(self, db):
        limited = QueryPipeline(db, OptimizerOptions(max_rows=10_000_000))
        assert limited.run_oql(CROSS) == QueryPipeline(db).run_oql(CROSS)

    def test_counts_join_pairs_not_output_rows(self, db):
        """A selective join still pays for every pair it considers — the
        budget bounds *work*, so a cross-join blowup that emits almost
        nothing cannot hide from it."""
        pipeline = QueryPipeline(db, OptimizerOptions(max_rows=100))
        with pytest.raises(BudgetExceeded):
            # Always-false non-equi predicate over both sides: it cannot be
            # pushed below the join or hashed, so the nested loop considers
            # all 480 pairs while emitting zero rows.
            pipeline.run_oql(
                "select e.name from e in Employees, d in Departments "
                "where e.salary < d.budget - 1000000000"
            )

    def test_interpreted_tier_also_governed(self, db):
        pipeline = QueryPipeline(
            db, OptimizerOptions(unnest=False, max_rows=50)
        )
        with pytest.raises(BudgetExceeded):
            pipeline.run_oql(CROSS)

    def test_pipeline_usable_after_trip(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(max_rows=50))
        with pytest.raises(BudgetExceeded):
            pipeline.run_oql(CROSS)
        # A query within budget runs fine on the same pipeline afterwards.
        assert pipeline.run_oql("count( select d from d in Departments )") == 8


class TestTimeout:
    def test_expired_deadline_trips(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(timeout=0.0))
        with pytest.raises(QueryTimeout, match="timeout"):
            pipeline.run_oql(CROSS)

    def test_generous_deadline_does_not_trip(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(timeout=60.0))
        assert pipeline.run_oql(CROSS) == QueryPipeline(db).run_oql(CROSS)

    def test_error_carries_query_and_stage(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(timeout=0.0))
        with pytest.raises(QueryTimeout) as info:
            pipeline.run_oql(CROSS)
        assert info.value.source == CROSS
        assert info.value.stage == "execute"


class TestMemoryBudget:
    def test_blocking_operator_build_trips(self, db):
        # The hash join materializes the right input; ~100 bytes cannot
        # hold 8 department environments.
        pipeline = QueryPipeline(db, OptimizerOptions(max_bytes=100))
        with pytest.raises(BudgetExceeded, match="memory budget"):
            pipeline.run_oql(
                "select e.name from e in Employees, d in Departments "
                "where e.dno = d.dno"
            )

    def test_generous_budget_does_not_trip(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(max_bytes=100_000_000))
        query = (
            "select e.name from e in Employees, d in Departments "
            "where e.dno = d.dno"
        )
        assert pipeline.run_oql(query) == QueryPipeline(db).run_oql(query)

    def test_estimate_bytes_is_shallow_but_positive(self):
        assert estimate_bytes(0) > 0
        assert estimate_bytes("hello") > 0
        assert estimate_bytes((1, 2, 3)) > estimate_bytes(())


class TestCancellation:
    def test_pre_cancelled_token(self, db):
        token = CancelToken()
        token.cancel()
        pipeline = QueryPipeline(db)
        with pytest.raises(QueryCancelled):
            pipeline.run_oql(CROSS, cancel_token=token)

    def test_cancel_mid_stream_from_another_thread(self, db):
        """A long-running query stops cooperatively when another thread
        flips the token while rows are flowing."""
        token = CancelToken()
        started = threading.Event()
        big = company_database(num_employees=400, num_departments=40, seed=3)
        pipeline = QueryPipeline(big)
        # tick_interval is 1024, so the canceller has many checkpoints to
        # land between on this ~16k-pair cross join.
        query = "select e.name from e in Employees, d in Departments"

        def cancel_soon():
            started.wait(timeout=5)
            token.cancel()

        canceller = threading.Thread(target=cancel_soon)
        canceller.start()
        started.set()
        try:
            with pytest.raises(QueryCancelled):
                # Retry until the cancel lands mid-query (it may need one
                # or two runs for the thread to get scheduled).
                for _ in range(1000):
                    pipeline.run_oql(query, cancel_token=token)
        finally:
            canceller.join()

    def test_token_is_reusable_across_queries(self, db):
        token = CancelToken()
        pipeline = QueryPipeline(db)
        assert pipeline.run_oql(
            "count( select e from e in Employees )", cancel_token=token
        ) == 60
        token.cancel()
        with pytest.raises(QueryCancelled):
            pipeline.run_oql(CROSS, cancel_token=token)


class TestGovernorUnit:
    def test_no_limits_never_trips(self):
        governor = Governor()
        for _ in range(5000):
            governor.tick()
        governor.check()
        assert governor.ticks == 5000

    def test_row_budget_exact(self):
        governor = Governor(max_rows=10)
        with pytest.raises(BudgetExceeded):
            for _ in range(11):
                governor.tick()
        assert governor.ticks == 11

    def test_charge_and_release(self):
        governor = Governor(max_bytes=1000)
        governor.charge(600)
        governor.release(600)
        governor.charge(600)  # fine again: budget tracks live bytes
        assert governor.peak_bytes == 600
        with pytest.raises(BudgetExceeded):
            governor.charge(600)

    def test_all_errors_are_governor_errors(self):
        assert issubclass(QueryTimeout, GovernorError)
        assert issubclass(BudgetExceeded, GovernorError)
        assert issubclass(QueryCancelled, GovernorError)


class TestConcurrentServing:
    """One pipeline object, many threads — the thread-safety contract."""

    QUERIES = [
        "select distinct e.name from e in Employees where e.salary > 30000",
        "select struct(D: d.name, C: count(select e from e in Employees "
        "where e.dno = d.dno)) from d in Departments",
        "sum( select e.salary from e in Employees )",
        "select e.name from e in Employees, d in Departments "
        "where e.dno = d.dno and d.budget > 0",
        "count( select d from d in Departments )",
        "select e.name from e in Employees order by value",
    ]

    def test_concurrent_corpus_matches_sequential(self, db):
        pipeline = QueryPipeline(db)
        expected = [pipeline.run_oql(q) for q in self.QUERIES]
        jobs = self.QUERIES * 8  # hammer the plan cache with repeats

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(pipeline.run_oql, jobs))

        for i, result in enumerate(results):
            assert result == expected[i % len(self.QUERIES)]
        # Repeats must have been served from the (locked) plan cache.
        assert pipeline.plan_cache.hits >= len(jobs) - len(self.QUERIES)

    def test_concurrent_queries_with_params(self, db):
        pipeline = QueryPipeline(db)
        source = "select e.name from e in Employees where e.dno = :d"
        expected = {d: pipeline.run_oql(source, d=d) for d in range(8)}

        def run(d):
            return d, pipeline.run_oql(source, d=d)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for d, result in pool.map(run, list(range(8)) * 5):
                assert result == expected[d]

    def test_one_governed_failure_leaves_others_unaffected(self, db):
        """A tripping query on a shared pipeline must not poison the
        concurrent queries running beside it."""
        pipeline = QueryPipeline(db)
        good = "select distinct e.name from e in Employees"
        expected = pipeline.run_oql(good)
        token = CancelToken()
        token.cancel()

        def doomed():
            try:
                pipeline.run_oql(CROSS, cancel_token=token)
            except QueryCancelled:
                return "cancelled"
            return "completed"

        def fine():
            return pipeline.run_oql(good)

        with ThreadPoolExecutor(max_workers=8) as pool:
            doomed_futures = [pool.submit(doomed) for _ in range(10)]
            fine_futures = [pool.submit(fine) for _ in range(10)]
            assert all(f.result() == "cancelled" for f in doomed_futures)
            assert all(f.result() == expected for f in fine_futures)


class TestGovernorStats:
    def test_stats_report_work_units(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(max_rows=10_000_000))
        stats = pipeline.run_oql_stats("select e.name from e in Employees")
        assert stats.governor_ticks > 0
        assert "work units" in stats.report()

    def test_ungoverned_stats_stay_zero(self, db):
        stats = QueryPipeline(db).run_oql_stats(
            "select e.name from e in Employees"
        )
        assert stats.governor_ticks == 0
        assert "work units" not in stats.report()

    def test_peak_bytes_reported_for_blocking_plans(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(max_bytes=100_000_000))
        stats = pipeline.run_oql_stats(
            "select e.name from e in Employees, d in Departments "
            "where e.dno = d.dno"
        )
        assert stats.governor_peak_bytes > 0
        assert "bytes buffered" in stats.report()
