"""Tests for the extensions beyond the paper's core algorithm.

Section 8 leaves bag/list unnesting as future work because "grouping alone
is not capable of reconstructing the input stream ... these collection
types are not idempotent".  Our engine's streams are *multisets* (operators
never deduplicate), so bag-monoid queries come out of the same C1–C9
translation correct — these tests pin that extension.  List-valued results
are provided through the ORDER BY engine extension, and the measured
executor (EXPLAIN ANALYZE) is covered here too.
"""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import evaluate_plan
from repro.calculus.evaluator import evaluate
from repro.calculus.terms import (
    BinOp,
    Extent,
    comprehension,
    const,
    path,
    record,
    var,
)
from repro.core.unnesting import unnest_query
from repro.data.database import Database
from repro.data.datagen import company_database
from repro.data.values import BagValue, ListValue, Record, SetValue
from repro.engine import run_with_stats
from repro.engine.planner import PlannerOptions, execute


@pytest.fixture(scope="module")
def db():
    return company_database(num_employees=18, num_departments=4, seed=21)


class TestBagUnnesting:
    """Bag-monoid queries through the full unnesting pipeline."""

    def check(self, term, database):
        reference = evaluate(term, database)
        plan = unnest_query(term)
        assert evaluate_plan(plan, database) == reference
        assert execute(plan, database) == reference
        assert execute(plan, database, PlannerOptions(hash_joins=False)) == reference
        return reference

    def test_flat_bag_projection_keeps_duplicates(self, db):
        term = comprehension("bag", path("e", "dno"), ("e", Extent("Employees")))
        result = self.check(term, db)
        assert isinstance(result, BagValue)
        assert len(result) == db.cardinality("Employees")

    def test_bag_with_nested_aggregate_head(self, db):
        inner = comprehension(
            "sum", const(1), ("c", path("e", "children"))
        )
        term = comprehension(
            "bag", record(D=path("e", "dno"), K=inner), ("e", Extent("Employees"))
        )
        result = self.check(term, db)
        assert len(result) == db.cardinality("Employees")

    def test_bag_with_correlated_aggregate_predicate(self, db):
        depth = comprehension(
            "max", path("u", "salary"), ("u", Extent("Employees")),
            BinOp("==", path("u", "dno"), path("e", "dno")),
        )
        term = comprehension(
            "bag", path("e", "dno"), ("e", Extent("Employees")),
            BinOp("==", path("e", "salary"), depth),
        )
        self.check(term, db)

    def test_bag_join_multiplicity(self):
        """A bag join must multiply multiplicities, unlike the set case."""
        database = Database()
        database.add_extent("L", [1, 1, 2], kind="bag")
        database.add_extent("R", [1, 2, 2], kind="bag")
        term = comprehension(
            "bag",
            var("x"),
            ("x", Extent("L")),
            ("y", Extent("R")),
            BinOp("==", var("x"), var("y")),
        )
        reference = evaluate(term, database)
        assert reference == BagValue([1, 1, 2, 2])
        plan = unnest_query(term)
        assert execute(plan, database) == reference

    def test_nested_bag_in_head(self, db):
        """A bag-valued inner query grouped per outer object."""
        inner = comprehension(
            "bag", path("c", "age"), ("c", path("e", "children"))
        )
        term = comprehension(
            "set",
            record(N=path("e", "name"), Ages=inner),
            ("e", Extent("Employees")),
        )
        result = self.check(term, db)
        assert all(isinstance(r["Ages"], BagValue) for r in result)

    def test_sum_over_bag_extent(self):
        database = Database()
        database.add_extent("B", [5, 5, 7], kind="bag")
        term = comprehension("sum", var("x"), ("x", Extent("B")))
        assert evaluate(term, database) == 17
        assert execute(unnest_query(term), database) == 17


class TestListSupport:
    """Lists work in the calculus; list extents feed other monoids."""

    def test_list_comprehension_preserves_order(self):
        database = Database()
        database.add_extent("L", [3, 1, 2], kind="list")
        term = comprehension(
            "list", BinOp("*", var("x"), const(10)), ("x", Extent("L"))
        )
        assert evaluate(term, database) == ListValue([30, 10, 20])

    def test_list_into_set_is_allowed(self):
        database = Database()
        database.add_extent("L", [2, 1, 2], kind="list")
        term = comprehension("set", var("x"), ("x", Extent("L")))
        assert evaluate(term, database) == SetValue([1, 2])

    def test_set_into_list_rejected_by_typechecker(self):
        from repro.calculus.typing import CalculusTypeError, infer_type
        from repro.data.schema import INT, Schema, set_of

        schema = Schema()
        schema.define_class("Int", value=INT)
        schema.define_extent("S", "Int")
        term = comprehension("list", var("x"), ("x", Extent("S")))
        with pytest.raises(CalculusTypeError, match="non-commutative"):
            infer_type(term, schema)


class TestExecutorStats:
    def test_stats_report(self, db):
        term = comprehension(
            "set",
            path("e", "name"),
            ("e", Extent("Employees")),
            BinOp(">", path("e", "age"), const(30)),
        )
        plan = unnest_query(term)
        stats = run_with_stats(plan, db)
        assert stats.result == evaluate(term, db)
        assert stats.total_rows > 0
        assert stats.elapsed_ms >= 0
        report = stats.report()
        assert "rows=" in report
        assert "Scan" in report

    def test_stats_expose_join_fanout(self, db):
        term = comprehension(
            "sum",
            const(1),
            ("e", Extent("Employees")),
            ("d", Extent("Departments")),
        )
        plan = unnest_query(term)
        stats = run_with_stats(plan, db, PlannerOptions(hash_joins=False))
        cross = db.cardinality("Employees") * db.cardinality("Departments")
        join_rows = [
            op.rows_produced for op in stats.operators if "Join" in op.operator
        ]
        assert join_rows == [cross]

    def test_stats_root_must_be_complete(self, db):
        from repro.algebra.operators import Scan

        with pytest.raises(TypeError, match="rooted at"):
            run_with_stats(Scan("Employees", "e"), db)
