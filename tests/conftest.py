"""Shared fixtures: one database per family, at a size small enough for the
naive nested-loop baseline to stay fast but large enough to exercise the
NULL-padding paths (empty departments, childless employees, students with
no transcript entries)."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.data.database import Database
from repro.data.datagen import (
    ab_database,
    auction_database,
    company_database,
    travel_database,
    university_database,
)


@pytest.fixture(scope="session")
def company_db() -> Database:
    return company_database(num_employees=30, num_departments=7, seed=7)


@pytest.fixture(scope="session")
def university_db() -> Database:
    return university_database(num_students=20, num_courses=9, seed=7)


@pytest.fixture(scope="session")
def travel_db() -> Database:
    return travel_database(num_cities=5, hotels_per_city=4, seed=7)


@pytest.fixture(scope="session")
def ab_db() -> Database:
    return ab_database(size_a=8, size_b=12, seed=7)


@pytest.fixture(scope="session")
def auction_db() -> Database:
    return auction_database(num_users=20, num_items=12, seed=7)


@pytest.fixture(scope="session")
def databases(
    company_db, university_db, travel_db, ab_db, auction_db
) -> dict[str, Database]:
    return {
        "company": company_db,
        "university": university_db,
        "travel": travel_db,
        "ab": ab_db,
        "auction": auction_db,
    }
