"""Tests for the staged pipeline: stage instrumentation, the plan cache,
and prepared-statement parameters (``:name``)."""

from __future__ import annotations

import pytest

from repro.calculus.evaluator import UnboundParameterError
from repro.calculus.terms import Param, param_names
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.core.pipeline import PIPELINE_STAGES, PlanCache, QueryPipeline
from repro.data.database import Database
from repro.data.datagen import company_database
from repro.data.values import Record, SetValue
from repro.oql import parameterize_literals
from tests.corpus import CORPUS


@pytest.fixture()
def db() -> Database:
    """A small private database (cache tests mutate it)."""
    return company_database(num_employees=30, num_departments=6, seed=11)


PARAM_QUERY = "select e.name from e in Employees where e.dno = :d and e.age > :a"


class TestStages:
    def test_compile_records_stage_sequence(self, db):
        pipeline = QueryPipeline(db)
        compiled = pipeline.compile_oql(PARAM_QUERY)
        names = [stage.name for stage in compiled.stages]
        assert names == [
            "parse", "translate", "typecheck", "normalize", "unnest",
            "simplify", "optimize", "plan",
        ]
        assert all(name in PIPELINE_STAGES for name in names)

    def test_stage_snapshots_show_every_representation(self, db):
        compiled = QueryPipeline(db).compile_oql(PARAM_QUERY)
        snapshots = {stage.name: stage.snapshot for stage in compiled.stages}
        assert snapshots["parse"].startswith("select ")
        assert ":d" in snapshots["parse"]
        assert snapshots["translate"].startswith("U+{")
        assert "scan[" in snapshots["unnest"]
        assert "Scan(" in snapshots["plan"]
        report = compiled.explain_stages()
        for name in snapshots:
            assert f"== {name} " in report

    def test_stage_timings_are_recorded(self, db):
        compiled = QueryPipeline(db).compile_oql(PARAM_QUERY)
        assert all(stage.elapsed_ms >= 0.0 for stage in compiled.stages)

    def test_optional_stages_follow_options(self, db):
        options = OptimizerOptions(unnest=False, typecheck=True)
        compiled = QueryPipeline(db, options).compile_oql(PARAM_QUERY)
        names = [stage.name for stage in compiled.stages]
        assert names == ["parse", "translate", "typecheck", "normalize"]
        assert compiled.optimized is None

    def test_compile_term_skips_front_end_stages(self, db):
        pipeline = QueryPipeline(db)
        term = pipeline.compile_oql(PARAM_QUERY).term
        compiled = pipeline.compile_term(term)
        names = [stage.name for stage in compiled.stages]
        assert names[0] == "typecheck"
        assert "parse" not in names

    def test_stage_counts_accumulate_across_queries(self, db):
        pipeline = QueryPipeline(db)
        pipeline.compile_oql("select e.name from e in Employees")
        pipeline.compile_oql("select d.dno from d in Departments")
        assert pipeline.stage_counts["parse"] == 2
        assert pipeline.stage_counts["normalize"] == 2


class TestPlanCache:
    def test_repeat_compile_is_a_cache_hit(self, db):
        pipeline = QueryPipeline(db)
        first = pipeline.compile_oql(PARAM_QUERY)
        second = pipeline.compile_oql(PARAM_QUERY)
        assert second is first
        assert pipeline.plan_cache.hits == 1
        assert pipeline.plan_cache.misses == 1

    def test_cache_hit_skips_recompilation(self, db):
        pipeline = QueryPipeline(db)
        pipeline.compile_oql(PARAM_QUERY)
        counts_after_first = dict(pipeline.stage_counts)
        pipeline.compile_oql(PARAM_QUERY)
        pipeline.compile_oql(PARAM_QUERY)
        # parse/normalize/unnest (and every other stage) ran exactly once.
        assert dict(pipeline.stage_counts) == counts_after_first
        assert pipeline.stage_counts["parse"] == 1
        assert pipeline.stage_counts["normalize"] == 1
        assert pipeline.stage_counts["unnest"] == 1

    def test_whitespace_normalization_shares_the_entry(self, db):
        pipeline = QueryPipeline(db)
        pipeline.compile_oql("select e.name   from e in Employees")
        pipeline.compile_oql("select e.name from\n  e in Employees")
        assert pipeline.plan_cache.hits == 1

    def test_schema_change_invalidates(self, db):
        pipeline = QueryPipeline(db)
        pipeline.compile_oql(PARAM_QUERY)
        db.add_extent("Extras", [Record(name="x", dno=1, age=1)])
        pipeline.compile_oql(PARAM_QUERY)
        assert pipeline.plan_cache.hits == 0
        assert pipeline.plan_cache.misses == 2

    def test_index_creation_invalidates(self, db):
        pipeline = QueryPipeline(db)
        pipeline.compile_oql(PARAM_QUERY)
        db.create_index("Employees", "dno")
        compiled = pipeline.compile_oql(PARAM_QUERY)
        assert pipeline.plan_cache.hits == 0
        # The fresh plan actually uses the new index.
        assert "IndexScan" in compiled.explain(db)

    def test_analyze_invalidates(self, db):
        pipeline = QueryPipeline(db)
        pipeline.compile_oql(PARAM_QUERY)
        db.analyze()
        pipeline.compile_oql(PARAM_QUERY)
        assert pipeline.plan_cache.misses == 2

    def test_view_redefinition_invalidates(self, db):
        pipeline = QueryPipeline(db)
        pipeline.define_view(
            "define seniors as select e from e in Employees where e.age > 50"
        )
        query = "select s.name from s in seniors"
        first = pipeline.run_oql(query)
        pipeline.define_view(
            "define seniors as select e from e in Employees where e.age > 20"
        )
        second = pipeline.run_oql(query)
        assert pipeline.plan_cache.hits == 0
        assert len(second) >= len(first)

    def test_lru_eviction(self, db):
        pipeline = QueryPipeline(db, cache_size=2)
        q1 = "select e.name from e in Employees"
        q2 = "select d.dno from d in Departments"
        q3 = "select e.age from e in Employees"
        pipeline.compile_oql(q1)
        pipeline.compile_oql(q2)
        pipeline.compile_oql(q1)  # refresh q1: q2 is now least recently used
        pipeline.compile_oql(q3)  # evicts q2
        assert len(pipeline.plan_cache) == 2
        hits = pipeline.plan_cache.hits
        pipeline.compile_oql(q2)  # must recompile
        assert pipeline.plan_cache.hits == hits

    def test_clear_resets_counters(self):
        cache = PlanCache(maxsize=4)
        cache.lookup("nope")
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_stats_surface_through_execution_stats(self, db):
        pipeline = QueryPipeline(db)
        first = pipeline.run_oql_stats(PARAM_QUERY, d=1, a=0)
        assert not first.from_cache
        assert (first.cache_hits, first.cache_misses) == (0, 1)
        second = pipeline.run_oql_stats(PARAM_QUERY, d=2, a=0)
        assert second.from_cache
        assert (second.cache_hits, second.cache_misses) == (1, 1)
        assert "cached plan" in second.report()
        assert "1 hits" in second.report()


class TestPreparedStatements:
    def test_param_names_discovered(self, db):
        compiled = QueryPipeline(db).compile_oql(PARAM_QUERY)
        assert compiled.param_names == {"d", "a"}
        assert param_names(compiled.prepared) == {"d", "a"}
        assert isinstance(Param("d"), Param)

    def test_rebinding_matches_inlined_constants(self, db):
        pipeline = QueryPipeline(db)
        compiled = pipeline.compile_oql(PARAM_QUERY)
        for dno, age in [(1, 0), (2, 30), (5, 99)]:
            inlined = pipeline.compile_oql(
                "select e.name from e in Employees "
                f"where e.dno = {dno} and e.age > {age}"
            )
            assert compiled.execute(db, d=dno, a=age) == inlined.execute(db)

    def test_bind_returns_independent_copy(self, db):
        compiled = QueryPipeline(db).compile_oql(PARAM_QUERY)
        bound = compiled.bind(d=1)
        assert bound is not compiled
        assert compiled.params == {}
        full = bound.bind(a=0)
        assert full.params == {"d": 1, "a": 0}
        assert full.execute(db) == compiled.execute(db, d=1, a=0)

    def test_execute_kwargs_override_bound_values(self, db):
        pipeline = QueryPipeline(db)
        bound = pipeline.compile_oql(PARAM_QUERY).bind(d=1, a=0)
        override = pipeline.compile_oql(
            "select e.name from e in Employees where e.dno = 2 and e.age > 0"
        )
        assert bound.execute(db, d=2) == override.execute(db)

    def test_null_param_matches_inlined_nil(self, db):
        pipeline = QueryPipeline(db)
        compiled = pipeline.compile_oql(
            "select e.name from e in Employees where e.dno = :d"
        )
        inlined = pipeline.compile_oql(
            "select e.name from e in Employees where e.dno = nil"
        )
        assert compiled.execute(db, d=None) == inlined.execute(db)
        assert len(compiled.execute(db, d=None)) == 0

    def test_collection_param_matches_inlined_disjunction(self, db):
        pipeline = QueryPipeline(db)
        compiled = pipeline.compile_oql(
            "select e.name from e in Employees where e.dno in :ds"
        )
        inlined = pipeline.compile_oql(
            "select e.name from e in Employees where e.dno = 1 or e.dno = 3"
        )
        result = compiled.execute(db, ds=SetValue([1, 3]))
        assert result == inlined.execute(db)
        assert len(result) > 0

    def test_missing_param_raises(self, db):
        compiled = QueryPipeline(db).compile_oql(PARAM_QUERY)
        with pytest.raises(UnboundParameterError, match="missing value"):
            compiled.execute(db, d=1)

    def test_unknown_param_rejected(self, db):
        compiled = QueryPipeline(db).compile_oql(PARAM_QUERY)
        with pytest.raises(UnboundParameterError, match="no parameter"):
            compiled.bind(nosuch=1)
        with pytest.raises(UnboundParameterError, match="no parameter"):
            compiled.execute(db, d=1, a=0, nosuch=1)

    def test_naive_interpretation_supports_params(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(unnest=False))
        compiled = pipeline.compile_oql(PARAM_QUERY)
        reference = QueryPipeline(db).compile_oql(PARAM_QUERY)
        assert compiled.execute(db, d=1, a=25) == reference.execute(db, d=1, a=25)

    def test_typecheck_accepts_params(self, db):
        pipeline = QueryPipeline(db, OptimizerOptions(typecheck=True))
        compiled = pipeline.compile_oql(PARAM_QUERY)
        assert compiled.execute(db, d=1, a=0) is not None

    def test_param_key_uses_index_scan(self, db):
        db.create_index("Employees", "dno")
        pipeline = QueryPipeline(db)
        compiled = pipeline.compile_oql(
            "select e.name from e in Employees where e.dno = :d"
        )
        assert "IndexScan" in compiled.explain(db)
        for dno in (1, 2, 4):
            inlined = pipeline.compile_oql(
                f"select e.name from e in Employees where e.dno = {dno}"
            )
            assert compiled.execute(db, d=dno) == inlined.execute(db)

    def test_order_by_key_may_be_parameterized(self, db):
        pipeline = QueryPipeline(db)
        compiled = pipeline.compile_oql(
            "select e.name as name, e.age as age from e in Employees "
            "where e.age > :a order by age desc"
        )
        result = compiled.execute(db, a=30)
        ages = [row["age"] for row in result.elements()]
        assert ages == sorted(ages, reverse=True)

    def test_optimizer_facade_is_the_pipeline(self, db):
        optimizer = Optimizer(db)
        assert isinstance(optimizer, QueryPipeline)
        compiled = optimizer.compile_oql(PARAM_QUERY)
        assert compiled.execute(db, d=1, a=0) == QueryPipeline(db).run_oql(
            PARAM_QUERY, d=1, a=0
        )


class TestParameterizeCorpus:
    """Lifting every literal of every corpus query into a parameter must not
    change any result — the property that makes plan caching sound for
    ad-hoc query streams that differ only in constants."""

    @pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
    def test_parameterized_equals_inlined(self, query, databases):
        db = databases[query.family]
        pipeline = QueryPipeline(db)
        expected = pipeline.run_oql(query.oql)
        source, params = parameterize_literals(query.oql)
        compiled = pipeline.compile_oql(source)
        assert compiled.param_names == set(params)
        assert compiled.execute(db, **params) == expected

    @pytest.mark.parametrize(
        "query", [q for q in CORPUS if parameterize_literals(q.oql)[1]],
        ids=lambda q: q.name,
    )
    def test_parameterized_plan_is_reused_across_bindings(self, query, databases):
        db = databases[query.family]
        pipeline = QueryPipeline(db)
        source, params = parameterize_literals(query.oql)
        first = pipeline.compile_oql(source)
        second = pipeline.compile_oql(source)
        assert second is first
        assert second.execute(db, **params) == pipeline.run_oql(query.oql)
