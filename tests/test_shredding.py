"""Tests for the query-shredding SQLite backend (repro.backends.shred).

Four concerns, mirroring the backend's layers:

* the shredded store round-trips every demo database losslessly
  (rehydration == original, OIDs preserved, multiplicity and order kept);
* the generated flat SQL is *stable* (golden tests on representative
  corpus queries — any change to the translation shows up as a diff here);
* execution parity with the in-memory engine on the shapes most likely to
  diverge: 3VL NULL handling, NULL grouping keys, value-equal duplicates
  under identity semantics;
* refusals are typed (BackendUnsupportedError), and the differential
  oracle counts them as skips instead of disagreements.

The corpus-wide parity sweep (every query, both backends, the oracle's
normalizer) lives at the bottom, mirroring test_batch.py's row-vs-batch
pattern.
"""

from __future__ import annotations

import pytest

from corpus import CORPUS
from repro.backends.shred import (
    ShreddedStore,
    compile_segments,
    execute_shredded,
    shredded_sql,
    shredded_store,
)
from repro.cli import DATABASES
from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryPipeline
from repro.data.database import Database
from repro.data.schema import FLOAT, INT, STRING, Schema, set_of
from repro.data.values import NULL, BagValue, ListValue, Record, SetValue
from repro.errors import BackendUnsupportedError, PlanningError
from repro.testing.oracle import PATHS, check_sample, results_equal


def _pipeline(db, **options):
    return QueryPipeline(db, OptimizerOptions(**options))


def run_both(db, source, **params):
    """One query on both backends; returns (memory, sqlite) results."""
    memory = _pipeline(db).run_oql(source, **params)
    shredded = _pipeline(db, backend="sqlite").run_oql(source, **params)
    return memory, shredded


# ---------------------------------------------------------------------------
# Shredded storage round-trips
# ---------------------------------------------------------------------------


class TestShreddedStore:
    @pytest.mark.parametrize("family", sorted(DATABASES))
    def test_demo_database_round_trips(self, family):
        db = DATABASES[family]()
        store = ShreddedStore(db)
        assert store.refusals == {}
        for name in db.extent_names():
            assert store.extent(name) == db.extent(name)

    def test_oids_survive_shredding(self):
        db = DATABASES["company"]()
        store = ShreddedStore(db)
        original = {e.oid for e in db.extent("Employees").elements()}
        rehydrated = {e.oid for e in store.extent("Employees").elements()}
        assert rehydrated == original

    def test_bag_multiplicity_survives(self):
        schema = Schema()
        schema.define_class("T", k=INT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        db.add_extent("Ts", [Record(k=1), Record(k=1), Record(k=2)], kind="bag")
        store = ShreddedStore(db)
        value = store.extent("Ts")
        assert isinstance(value, BagValue)
        assert value.count(Record(k=1)) == 2

    def test_list_order_survives(self):
        schema = Schema()
        schema.define_class("T", k=INT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        db.add_extent("Ts", [Record(k=3), Record(k=1), Record(k=2)], kind="list")
        store = ShreddedStore(db)
        value = store.extent("Ts")
        assert isinstance(value, ListValue)
        assert [r["k"] for r in value] == [3, 1, 2]

    def test_nulls_round_trip(self):
        schema = Schema()
        schema.define_class("T", k=INT, v=FLOAT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        db.add_extent("Ts", [Record(k=1, v=NULL), Record(k=NULL, v=2.0)])
        store = ShreddedStore(db)
        assert store.extent("Ts") == db.extent("Ts")

    def test_nested_record_and_collection_round_trip(self):
        # A record inside a record, and a collection hanging off the
        # *nested* record: the child table keys on the containing row.
        schema = Schema()
        schema.define_class("T", k=INT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        rows = [
            Record(k=1, sub=Record(m=10, kids=SetValue([Record(a=1)]))),
            Record(k=2, sub=Record(m=20, kids=SetValue([]))),
        ]
        db.add_extent("Ts", rows)
        store = ShreddedStore(db)
        assert store.extent("Ts") == db.extent("Ts")
        assert "Ts$sub$kids" in {
            t.name for t in store.tables["Ts"].children.values()
        }

    def test_scalar_extent_round_trips(self):
        db = DATABASES["ab"]()  # A and B store plain ints
        store = ShreddedStore(db)
        assert store.extent("A") == db.extent("A")
        assert store.tables["A"].element == "scalar"

    def test_store_is_cached_until_schema_changes(self):
        db = DATABASES["travel"]()
        first = shredded_store(db)
        assert shredded_store(db) is first
        db.add_extent("Extra", [Record(k=1)] if False else [])
        assert shredded_store(db) is not first

    def test_unknown_extent_raises(self):
        store = ShreddedStore(DATABASES["ab"]())
        with pytest.raises(KeyError):
            store.extent("Nope")

    @pytest.mark.parametrize("file_backed", [False, True])
    def test_closed_store_raises_instead_of_reopening(
        self, file_backed, tmp_path
    ):
        """Statements on a closed store must raise — before the fix, a
        closed in-memory store lazily opened a brand-new empty ':memory:'
        database and answered queries with silently wrong results."""
        import sqlite3

        db = DATABASES["company"]()
        db_path = str(tmp_path / "shred.db") if file_backed else None
        store = ShreddedStore(db, db_path=db_path)
        with store.statement_guard() as connection:
            connection.execute("SELECT 1").fetchone()
        store.close()
        with pytest.raises(sqlite3.ProgrammingError):
            with store.statement_guard() as connection:
                connection.execute("SELECT 1")
        with pytest.raises(sqlite3.ProgrammingError):
            store.connection


# ---------------------------------------------------------------------------
# Golden SQL: the generated flat queries are stable
# ---------------------------------------------------------------------------


GOLDEN_SQL = {
    # Paper QUERY A: unnest of a child collection -> join on $parent.
    "query_a": [
        'SELECT t0."$oid" AS c0, t1."$oid" AS c1 '
        'FROM ("Employees" t0 JOIN "Employees$children" t1 '
        'ON t1."$parent" = t0."$oid") '
        'ORDER BY t0."$pos", t1."$pos"'
    ],
    # Paper QUERY B (type-JA): the O5 outer-join becomes a LEFT JOIN, and
    # the collection-valued root Nest lowers to an ordered merge query
    # (keys first, then the contribution flag, head, and first-seen rank).
    "query_b": [
        'SELECT t0."$oid" AS c0, ((t1."$oid" IS NOT NULL)) AS "$c", '
        't1."$oid" AS "$h", '
        'ROW_NUMBER() OVER (ORDER BY t0."$pos", t1."$pos") AS "$rn" '
        'FROM ("Departments" t0 LEFT JOIN "Employees" t1 '
        'ON (t1."dno" = t0."dno")) '
        'ORDER BY c0, "$rn"'
    ],
    # Paper QUERY D: two outer-unnests over a quantifier (all/sum) pair —
    # both Nests and the root Reduce push into nested GROUP BY subqueries;
    # nothing stitches in Python.
    "query_d": [
        'SELECT "k0" AS c0, COALESCE(SUM("$c"), 0) AS c1 '
        'FROM (SELECT t3."k0$$oid" AS "k0", '
        '(CASE WHEN (t3."k1$$oid" IS NOT NULL) AND t3."$agg" '
        'THEN 1 ELSE NULL END) AS "$c", '
        't3."$pos" AS "$rn" '
        'FROM (SELECT "k0$$oid", "k0$age", "k0$dno", "k0$manager$name", '
        '"k0$manager$oid", "k0$name", "k0$oid", "k0$salary", "k1$$oid", '
        '"k1$age", "k1$name", COALESCE(MIN("$c"), 1) AS "$agg", '
        'MIN("$rn") AS "$pos" '
        'FROM (SELECT t0."$oid" AS "k0$$oid", t0."age" AS "k0$age", '
        't0."dno" AS "k0$dno", t0."manager$name" AS "k0$manager$name", '
        't0."manager$oid" AS "k0$manager$oid", t0."name" AS "k0$name", '
        't0."oid" AS "k0$oid", t0."salary" AS "k0$salary", '
        't1."$oid" AS "k1$$oid", t1."age" AS "k1$age", '
        't1."name" AS "k1$name", '
        '(CASE WHEN (t2."$oid" IS NOT NULL) THEN (t1."age" > t2."age") '
        'ELSE NULL END) AS "$c", '
        'ROW_NUMBER() OVER (ORDER BY t0."$pos", t1."$pos", t2."$pos") '
        'AS "$rn" '
        'FROM (("Employees" t0 LEFT JOIN "Employees$children" t1 '
        'ON t1."$parent" = t0."$oid") '
        'LEFT JOIN "Employees$manager$children" t2 '
        'ON t2."$parent" = t0."$oid")) '
        'GROUP BY "k0$$oid", "k1$$oid") t3) '
        'GROUP BY "k0" ORDER BY MIN("$rn")'
    ],
    # Paper QUERY E: both outer-joins in one flat query, predicates in ON.
    # The ON conjunction lowers to plain AND (an ON clause only tests
    # truth, where the reference's left-biased `and` and Kleene AND agree),
    # keeping the equality conjuncts transparent to SQLite's planner so
    # the Transcript probe runs off the lowering-time index.  Both
    # quantifier Nests (some/all) collapse into chained GROUP BY
    # subqueries under the collection-valued root fold.
    "query_e": [
        'SELECT t4."k0$$oid" AS c0 '
        'FROM (SELECT "k0$$oid", "k0$age", "k0$id", "k0$name", '
        'COALESCE(MIN("$c"), 1) AS "$agg", MIN("$rn") AS "$pos" '
        'FROM (SELECT t3."k0$$oid" AS "k0$$oid", t3."k0$age" AS "k0$age", '
        't3."k0$id" AS "k0$id", t3."k0$name" AS "k0$name", '
        '(CASE WHEN (t3."k1$$oid" IS NOT NULL) THEN t3."$agg" '
        'ELSE NULL END) AS "$c", '
        't3."$pos" AS "$rn" '
        'FROM (SELECT "k0$$oid", "k0$age", "k0$id", "k0$name", "k1$$oid", '
        '"k1$cno", "k1$title", COALESCE(MAX("$c"), 0) AS "$agg", '
        'MIN("$rn") AS "$pos" '
        'FROM (SELECT t0."$oid" AS "k0$$oid", t0."age" AS "k0$age", '
        't0."id" AS "k0$id", t0."name" AS "k0$name", '
        't1."$oid" AS "k1$$oid", t1."cno" AS "k1$cno", '
        't1."title" AS "k1$title", '
        '(CASE WHEN (t2."$oid" IS NOT NULL) THEN 1 ELSE NULL END) AS "$c", '
        'ROW_NUMBER() OVER (ORDER BY t0."$pos", t1."$pos", t2."$pos") '
        'AS "$rn" '
        'FROM (("Student" t0 LEFT JOIN "Courses" t1 '
        'ON (t1."title" = \'DB\')) '
        'LEFT JOIN "Transcript" t2 '
        'ON ((t2."id" = t0."id") AND (t2."cno" = t1."cno")))) '
        'GROUP BY "k0$$oid", "k1$$oid") t3) '
        'GROUP BY "k0$$oid") t4 '
        'WHERE t4."$agg" ORDER BY t4."$pos"'
    ],
    # A flat selection compiles the predicate into WHERE; the projected
    # head is pushed into the SELECT list (no object rehydration needed).
    "flat_select": [
        'SELECT t0."name" AS c0 FROM "Employees" t0 '
        'WHERE (t0."salary" > 70000) ORDER BY t0."$pos"'
    ],
    # Section 5 group-by: the whole Nest (grouping + avg aggregate) pushes
    # into one GROUP BY query; first-seen group order via MIN(row number).
    "group_avg": [
        'SELECT "k0" AS c0, AVG("$c") AS c1 '
        'FROM (SELECT t0."dno" AS "k0", '
        '(CASE WHEN (t0."dno" IS NOT NULL) THEN t0."salary" '
        'ELSE NULL END) AS "$c", '
        'ROW_NUMBER() OVER (ORDER BY t0."$pos") AS "$rn" '
        'FROM "Employees" t0 WHERE (t0."age" > 30)) '
        'GROUP BY "k0" ORDER BY MIN("$rn")'
    ],
}


class TestGoldenSQL:
    @pytest.mark.parametrize("name", sorted(GOLDEN_SQL))
    def test_generated_sql_is_stable(self, name):
        query = next(q for q in CORPUS if q.name == name)
        db = DATABASES[query.family]()
        assert shredded_sql(db, query.oql) == GOLDEN_SQL[name]

    def test_every_corpus_query_produces_some_sql(self):
        # The translation degrades gracefully, but on the demo databases no
        # corpus query should degrade all the way to zero flat queries.
        dbs = {family: DATABASES[family]() for family in DATABASES}
        missing = [
            q.name for q in CORPUS if not shredded_sql(dbs[q.family], q.oql)
        ]
        assert missing == []


# ---------------------------------------------------------------------------
# Execution parity on divergence-prone shapes
# ---------------------------------------------------------------------------


def _null_db():
    schema = Schema()
    schema.define_class("T", k=INT, v=FLOAT, s=STRING)
    schema.define_extent("Ts", "T")
    db = Database(schema)
    db.add_extent(
        "Ts",
        [
            Record(k=1, v=10.0, s="a"),
            Record(k=2, v=NULL, s="b"),
            Record(k=NULL, v=30.0, s=NULL),
            Record(k=2, v=5.0, s="a"),
        ],
    )
    return db


class TestThreeValuedLogicParity:
    @pytest.mark.parametrize(
        "source",
        [
            # NULL comparisons drop rows on both backends.
            "select t.k from t in Ts where t.v > 6.0",
            # 3VL or: NULL or true is true.
            "select t.k from t in Ts where t.v > 6.0 or t.k = 2",
            # 3VL and under negation.
            "select t.k from t in Ts where not (t.v > 6.0 and t.k = 1)",
            # Aggregates skip stored NULLs identically.
            "sum( select t.v from t in Ts )",
            "count( select t from t in Ts where t.s = \"a\" )",
        ],
    )
    def test_parity(self, source):
        db = _null_db()
        memory, shredded = run_both(db, source)
        assert results_equal(memory, shredded)

    def test_null_grouping_key_parity(self):
        # The NULL k groups under the NULL key on both backends (the O5-O7
        # null_vars convention: a NULL key pads to the monoid zero).
        db = _null_db()
        memory, shredded = run_both(
            db,
            "select distinct t.k, count(t.v) as n from Ts t group by t.k",
        )
        assert results_equal(memory, shredded)


class TestIdentityParity:
    def test_value_equal_duplicates_parity(self):
        # Two value-equal records are distinct *objects*: bag semantics must
        # keep both on each backend (identity, not value, multiplicity).
        schema = Schema()
        schema.define_class("T", k=INT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        db.add_extent("Ts", [Record(k=1), Record(k=1), Record(k=2)], kind="bag")
        memory, shredded = run_both(db, "select t.k from t in Ts")
        assert results_equal(memory, shredded)
        assert shredded.count(1) == 2

    def test_object_equality_is_identity_on_both(self):
        db = DATABASES["company"]()
        source = (
            "count( select struct(a: e, b: f) "
            "from e in Employees, f in Employees where e = f )"
        )
        memory, shredded = run_both(db, source)
        assert memory == shredded


class TestStitching:
    def test_nested_result_round_trip(self):
        db = DATABASES["company"]()
        memory, shredded = run_both(
            db,
            "select distinct struct( D: d.name, E: ( select e.name "
            "from e in Employees where e.dno = d.dno ) ) "
            "from d in Departments",
        )
        assert results_equal(memory, shredded)

    def test_stitched_objects_are_the_rehydrated_ones(self):
        # Rows decoded from SQL resolve $oid to the store's objects, and
        # those compare identity-equal to the database's own (same OIDs).
        db = DATABASES["company"]()
        memory, shredded = run_both(db, "select distinct e from e in Employees")
        assert {e.oid for e in memory} == {e.oid for e in shredded}


# ---------------------------------------------------------------------------
# Typed refusals and oracle skip accounting
# ---------------------------------------------------------------------------


def _inheritance_db():
    schema = Schema()
    schema.define_class("Person", name=STRING)
    schema.define_class("Employee", extends="Person", salary=INT)
    schema.define_extent("People", "Person")
    schema.define_extent("Employees", "Employee")
    db = Database(schema)
    db.add_extent("People", [Record(name="p")])
    db.add_extent("Employees", [Record(name="e", salary=1)])
    return db


class TestRefusals:
    def test_inheritance_is_refused(self):
        with pytest.raises(BackendUnsupportedError):
            ShreddedStore(_inheritance_db())

    def test_null_collection_attribute_is_refused_per_extent(self):
        schema = Schema()
        schema.define_class("T", k=INT, kids=set_of(INT))
        schema.define_extent("Ts", "T")
        schema.define_class("U", k=INT)
        schema.define_extent("Us", "U")
        db = Database(schema)
        db.add_extent(
            "Ts", [Record(k=1, kids=SetValue([1])), Record(k=2, kids=NULL)]
        )
        db.add_extent("Us", [Record(k=1)])
        store = ShreddedStore(db)  # other extents still shred
        assert "Ts" in store.refusals
        with pytest.raises(BackendUnsupportedError):
            store.extent("Ts")
        assert store.extent("Us") == db.extent("Us")

    def test_mixed_column_types_are_refused(self):
        schema = Schema()
        schema.define_class("T", k=INT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        db.add_extent("Ts", [Record(k=1), Record(k="one")])
        store = ShreddedStore(db)
        assert "Ts" in store.refusals

    def test_collection_of_collections_is_refused(self):
        schema = Schema()
        schema.define_class("T", k=INT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        db.add_extent(
            "Ts", [Record(k=1, kids=SetValue([SetValue([1, 2])]))]
        )
        store = ShreddedStore(db)
        assert "Ts" in store.refusals

    def test_unnest_off_is_refused(self):
        db = DATABASES["ab"]()
        pipeline = _pipeline(db, backend="sqlite", unnest=False)
        with pytest.raises(BackendUnsupportedError):
            pipeline.run_oql("select a from a in A")

    def test_unknown_backend_is_a_planning_error(self):
        db = DATABASES["ab"]()
        with pytest.raises(PlanningError):
            _pipeline(db, backend="duckdb").run_oql("select a from a in A")

    def test_refusal_on_touched_extent_only(self):
        # A query that never touches the refused extent runs fine.
        schema = Schema()
        schema.define_class("T", k=INT)
        schema.define_extent("Ts", "T")
        schema.define_class("U", k=INT)
        schema.define_extent("Us", "U")
        db = Database(schema)
        db.add_extent("Ts", [Record(k=1), Record(k="bad")])
        db.add_extent("Us", [Record(k=7)])
        assert _pipeline(db, backend="sqlite").run_oql(
            "select u.k from u in Us"
        ) == BagValue([7])
        with pytest.raises(BackendUnsupportedError):
            _pipeline(db, backend="sqlite").run_oql("select t.k from t in Ts")


class TestOracleIntegration:
    def test_sqlite_paths_are_registered(self):
        names = [name for name, _ in PATHS]
        assert len(names) == 17
        assert "sqlite-shredded" in names
        assert "sqlite-shredded-pushdown" in names
        assert "sqlite-shredded-cached-plan" in names

    def test_agreement_on_demo_database(self):
        db = DATABASES["company"]()
        verdict = check_sample(
            "select distinct e.name from e in Employees where e.dno = 1",
            {},
            db,
        )
        assert verdict.agreed
        assert verdict.skipped == []

    def test_refusal_counts_as_skip_not_disagreement(self):
        verdict = check_sample(
            "select p.name from p in People", {}, _inheritance_db()
        )
        skipped = {outcome.path for outcome in verdict.skipped}
        assert skipped == {
            "sqlite-shredded",
            "sqlite-shredded-pushdown",
            "sqlite-shredded-cached-plan",
        }
        assert verdict.agreed  # skips are not disagreements
        for outcome in verdict.skipped:
            assert "SKIPPED" in outcome.describe()


# ---------------------------------------------------------------------------
# Stats / EXPLAIN surfaces
# ---------------------------------------------------------------------------


class TestObservability:
    def test_stats_report_flat_queries(self):
        db = DATABASES["company"]()
        stats = _pipeline(db, backend="sqlite").run_oql_stats(
            "select distinct e.name from e in Employees where e.salary > 0"
        )
        assert stats.backend == "sqlite"
        assert stats.flat_queries
        sql, rows, sql_ms, decode_ms = stats.flat_queries[0]
        assert sql.startswith("SELECT") and rows >= 0
        assert sql_ms >= 0.0 and decode_ms >= 0.0
        report = stats.report()
        assert "backend=sqlite" in report
        assert "flat query:" in report
        assert "ms sql" in report and "ms decode" in report

    def test_explain_shows_generated_sql(self):
        db = DATABASES["company"]()
        compiled = _pipeline(db, backend="sqlite").compile_oql(
            "select distinct e.name from e in Employees where e.salary > 0"
        )
        explain = compiled.explain(db)
        assert "backend: sqlite" in explain
        assert "[sql]" in explain and "SELECT" in explain

    def test_governor_limits_apply_to_sql_rows(self):
        from repro.errors import BudgetExceeded

        db = DATABASES["company"]()
        with pytest.raises(BudgetExceeded):
            _pipeline(db, backend="sqlite", max_rows=3).run_oql(
                "select e.name from e in Employees"
            )


# ---------------------------------------------------------------------------
# The cross-backend corpus parity sweep (mirrors test_batch.py)
# ---------------------------------------------------------------------------


_FAMILY_DBS = {family: DATABASES[family]() for family in DATABASES}


class TestCorpusParity:
    """Every corpus query, both backends, zero silent skips.

    A BackendUnsupportedError here would be *counted* — the refusals list
    below is asserted empty, so any future gap fails loudly instead of
    shrinking coverage."""

    refusals: list = []

    @pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
    def test_backend_parity(self, query):
        db = _FAMILY_DBS[query.family]
        memory = _pipeline(db).run_oql(query.oql)
        try:
            shredded = _pipeline(db, backend="sqlite").run_oql(query.oql)
        except BackendUnsupportedError as exc:  # pragma: no cover - none expected
            TestCorpusParity.refusals.append((query.name, str(exc)))
            pytest.fail(f"backend refused corpus query {query.name}: {exc}")
        assert results_equal(memory, shredded), query.name

    def test_zero_silent_skips(self):
        assert TestCorpusParity.refusals == []

    @pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
    def test_stats_path_parity(self, query):
        # The stats entry point shares the sqlite branch with execute();
        # spot-check the whole corpus agrees there too (cheap: plan cache).
        db = _FAMILY_DBS[query.family]
        pipeline = _pipeline(db, backend="sqlite")
        stats = pipeline.run_oql_stats(query.oql)
        memory = _pipeline(db).run_oql(query.oql)
        assert results_equal(memory, stats.result), query.name
