"""API quality gates: public items are documented and importable, and the
package's `__all__` lists are honest."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if "__pycache__" not in name
]


def test_every_module_imports():
    for name in MODULES:
        importlib.import_module(name)


@pytest.mark.parametrize("module_name", MODULES)
def test_every_module_has_a_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_are_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module_name}: public items without docstrings: {undocumented}"
    )


def test_dunder_all_entries_exist():
    for module_name in MODULES + ["repro"]:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_top_level_exports_cover_the_pipeline():
    essential = [
        "Optimizer",
        "OptimizerOptions",
        "Database",
        "parse",
        "parse_and_translate",
        "normalize",
        "prepare",
        "unnest",
        "unnest_query",
        "simplify",
        "evaluate",
        "evaluate_plan",
        "execute",
        "pretty",
        "pretty_plan",
        "classify_oql",
    ]
    for name in essential:
        assert name in repro.__all__, f"{name} missing from repro.__all__"


def test_version_is_set():
    assert repro.__version__
