"""Unit tests for the optimizer pipeline, the rewrite engine, and the
algebraic/join-order phases (paper Section 6)."""

from __future__ import annotations

import pytest

from repro.algebra.operators import (
    Join,
    OuterJoin,
    Reduce,
    Scan,
    Seed,
    Select,
    operators,
)
from repro.calculus.terms import BinOp, Const, conj, const, path, var
from repro.core.optimizer import (
    ALGEBRAIC_RULES,
    CompiledQuery,
    Optimizer,
    OptimizerOptions,
    reorder_joins,
)
from repro.core.rewrite import RewriteEngine, Rule, RuleSet
from repro.data.datagen import company_database, university_database
from repro.engine.cost import CostModel


@pytest.fixture(scope="module")
def company():
    return company_database(num_employees=24, num_departments=5, seed=5)


@pytest.fixture(scope="module")
def university():
    return university_database(num_students=15, num_courses=8, seed=5)


class TestRewriteEngine:
    def test_rules_register_via_decorator(self):
        phase = RuleSet("demo")

        @phase.rule("nop")
        def nop(plan):
            return None

        assert len(phase) == 1
        assert phase.rules[0].name == "nop"

    def test_fixpoint_and_firing_log(self):
        phase = RuleSet("demo")

        @phase.rule("fuse-selects")
        def fuse(plan):
            if isinstance(plan, Select) and isinstance(plan.child, Select):
                return Select(plan.child.child, conj(plan.child.pred, plan.pred))
            return None

        plan = Select(
            Select(Select(Scan("X", "x"), var("a")), var("b")), var("c")
        )
        engine = RewriteEngine()
        result = engine.run_phase(phase, plan)
        selects = [op for op in operators(result) if isinstance(op, Select)]
        assert len(selects) == 1
        assert all(f.rule == "fuse-selects" for f in engine.firings)
        assert len(engine.firings) == 2

    def test_diverging_phase_detected(self):
        phase = RuleSet("bad")

        @phase.rule("flip-flop")
        def flip(plan):
            if isinstance(plan, Select):
                # alternates between two forms forever
                flipped = BinOp("and", Const(True), plan.pred)
                if plan.pred != flipped:
                    return Select(plan.child, flipped)
            return None

        engine = RewriteEngine(max_passes=5)
        with pytest.raises(RuntimeError, match="fixpoint"):
            engine.run_phase(phase, Select(Scan("X", "x"), var("p")))


class TestAlgebraicRules:
    def test_rule_inventory(self):
        names = {rule.name for rule in ALGEBRAIC_RULES.rules}
        assert names == {
            "select-true-elim",
            "select-merge",
            "join-pred-push-right",
            "join-pred-push-left",
            "select-pushdown",
            "reduce-pred-to-select",
            "select-through-nest",
            "seed-join-elim",
        }

    def test_right_only_pred_pushed_into_outer_join(self, university):
        """QUERY E's course-title selection ends up under the outer-join."""
        optimizer = Optimizer(university)
        compiled = optimizer.compile_oql(
            "select distinct s from s in Student "
            'where for all c in ( select c from c in Courses where c.title = "DB" ): '
            "exists t in Transcript: (t.id = s.id and t.cno = c.cno)"
        )
        joins = [
            op for op in operators(compiled.optimized) if isinstance(op, OuterJoin)
        ]
        course_join = joins[-1]
        assert isinstance(course_join.right, Select), "selection was not pushed"

    def test_seed_join_eliminated(self):
        plan = Reduce(
            Join(Seed(), Scan("X", "x"), Const(True)), "sum", const(1)
        )
        engine = RewriteEngine()
        result = engine.run_phase(ALGEBRAIC_RULES, plan)
        assert not any(isinstance(op, Seed) for op in operators(result))

    def test_phase_preserves_results_on_corpus(self, company):
        """Covered more broadly in test_integration; spot-check here with
        the algebraic phase isolated."""
        source = (
            "select distinct e.name from e in Employees "
            "where e.salary > avg( select u.salary from u in Employees )"
        )
        plain = Optimizer(
            company, OptimizerOptions(algebraic=False, reorder_joins=False)
        ).run_oql(source)
        rewritten = Optimizer(
            company, OptimizerOptions(algebraic=True, reorder_joins=False)
        ).run_oql(source)
        assert plain == rewritten


class TestJoinReordering:
    def _chain(self, sizes: dict[str, int]):
        db_model = CostModel()
        # build a fake cost model via a stub database
        from repro.data.database import Database
        from repro.data.values import Record

        db = Database()
        for name, size in sizes.items():
            db.add_extent(name, [Record(k=i) for i in range(size)])
        return CostModel(db), db

    def test_smallest_relation_first(self):
        model, _ = self._chain({"Big": 100, "Small": 2, "Mid": 10})
        plan = Join(
            Join(Scan("Big", "b"), Scan("Mid", "m"),
                 BinOp("==", path("b", "k"), path("m", "k"))),
            Scan("Small", "s"),
            BinOp("==", path("m", "k"), path("s", "k")),
        )
        reordered = reorder_joins(Reduce(plan, "sum", const(1)), model)
        scans = [op for op in operators(reordered) if isinstance(op, Scan)]
        # pre-order of a left-deep tree lists the first-joined leaf first
        assert scans[0].extent == "Small"

    def test_no_cross_product_when_avoidable(self):
        model, db = self._chain({"A": 10, "B": 10, "C": 10})
        plan = Join(
            Join(Scan("A", "a"), Scan("B", "b"),
                 BinOp("==", path("a", "k"), path("b", "k"))),
            Scan("C", "c"),
            BinOp("==", path("b", "k"), path("c", "k")),
        )
        reordered = reorder_joins(Reduce(plan, "sum", const(1)), model)
        for op in operators(reordered):
            if isinstance(op, Join):
                assert op.pred != Const(True), "cross product introduced"

    def test_all_predicates_retained(self):
        model, _ = self._chain({"A": 5, "B": 5, "C": 5})
        preds = [
            BinOp("==", path("a", "k"), path("b", "k")),
            BinOp("==", path("b", "k"), path("c", "k")),
            BinOp("<", path("a", "k"), path("c", "k")),
        ]
        plan = Join(
            Join(Scan("A", "a"), Scan("B", "b"), preds[0]),
            Scan("C", "c"),
            conj(preds[1], preds[2]),
        )
        reordered = reorder_joins(Reduce(plan, "sum", const(1)), model)
        from repro.calculus.terms import conjuncts, subterms

        found = []
        for op in operators(reordered):
            for attr in ("pred",):
                value = getattr(op, attr, None)
                if value is not None:
                    found.extend(conjuncts(value))
        assert set(found) >= set(preds)

    def test_outer_joins_never_reordered(self, university):
        source = (
            "select distinct s from s in Student "
            'where for all c in ( select c from c in Courses where c.title = "DB" ): '
            "exists t in Transcript: (t.id = s.id and t.cno = c.cno)"
        )
        with_reorder = Optimizer(university).run_oql(source)
        without = Optimizer(
            university, OptimizerOptions(reorder_joins=False)
        ).run_oql(source)
        assert with_reorder == without


class TestPipeline:
    def test_compiled_query_fields(self, company):
        compiled = Optimizer(company).compile_oql(
            "select distinct e.name from e in Employees"
        )
        assert isinstance(compiled, CompiledQuery)
        assert compiled.source is not None
        assert compiled.logical is not None
        assert compiled.optimized is not None
        assert compiled.trace is not None

    def test_unnest_disabled_has_no_plan(self, company):
        compiled = Optimizer(
            company, OptimizerOptions(unnest=False)
        ).compile_oql("select distinct e.name from e in Employees")
        assert compiled.logical is None
        with pytest.raises(ValueError, match="unnest=False"):
            compiled.physical(company)

    def test_explain(self, company):
        compiled = Optimizer(company).compile_oql(
            "select distinct e.name from e in Employees where e.age > 30"
        )
        text = compiled.explain(company)
        assert "Scan" in text and "Reduce" in text

    def test_run_oql_requires_database(self):
        with pytest.raises(ValueError, match="no database"):
            Optimizer().run_oql("select distinct e from e in Employees")

    def test_compile_term_directly(self, company):
        from repro.calculus.terms import Extent, comprehension

        term = comprehension("sum", const(1), ("e", Extent("Employees")))
        compiled = Optimizer(company).compile_term(term)
        assert compiled.execute(company) == company.cardinality("Employees")
