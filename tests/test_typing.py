"""Unit tests for the typing rules: calculus (Figure 3) and algebra (Figure 6)."""

from __future__ import annotations

import pytest

from repro.algebra.operators import (
    Join,
    Nest,
    OuterJoin,
    Reduce,
    Scan,
    Select,
    Unnest,
)
from repro.algebra.typing import AlgebraTypeError, infer_plan_type
from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Extent,
    If,
    IsNull,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Proj,
    Singleton,
    Zero,
    comprehension,
    const,
    path,
    record,
    var,
)
from repro.calculus.typing import CalculusTypeError, infer_type
from repro.data.schema import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    CollectionType,
    FunctionType,
    RecordType,
    Schema,
    record_of,
    set_of,
    unify,
)


@pytest.fixture()
def schema() -> Schema:
    s = Schema()
    s.define_class("Emp", name=STRING, age=INT, salary=FLOAT)
    s.define_extent("Employees", "Emp")
    return s


class TestSchemaTypes:
    def test_record_attribute_lookup(self):
        rec = record_of(a=INT, b=STRING)
        assert rec.attribute("a") == INT
        with pytest.raises(KeyError):
            rec.attribute("c")

    def test_record_equality_order_free(self):
        assert record_of(a=INT, b=BOOL) == record_of(b=BOOL, a=INT)

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            RecordType((("a", INT), ("a", BOOL)))

    def test_collection_type_str(self):
        assert str(set_of(INT)) == "set(int)"

    def test_invalid_collection_kind(self):
        with pytest.raises(ValueError):
            CollectionType("queue", INT)

    def test_unify_any(self):
        assert unify(ANY, INT) == INT
        assert unify(INT, ANY) == INT

    def test_unify_numeric_widening(self):
        assert unify(INT, FLOAT) == FLOAT

    def test_unify_collections(self):
        assert unify(set_of(INT), set_of(ANY)) == set_of(INT)

    def test_unify_mismatch(self):
        with pytest.raises(TypeError):
            unify(INT, STRING)
        with pytest.raises(TypeError):
            unify(set_of(INT), CollectionType("bag", INT))

    def test_schema_extent_type(self, schema):
        extent_type = schema.extent_type("Employees")
        assert isinstance(extent_type, CollectionType)
        assert extent_type.monoid_name == "set"

    def test_schema_unknown_lookups(self, schema):
        with pytest.raises(KeyError):
            schema.extent_type("Ghost")
        with pytest.raises(KeyError):
            schema.class_type("Ghost")
        with pytest.raises(KeyError):
            schema.define_extent("X", "Ghost")


class TestCalculusTyping:
    def test_constants(self):
        assert infer_type(const(True)) == BOOL
        assert infer_type(const(3)) == INT
        assert infer_type(const(3.5)) == FLOAT
        assert infer_type(const("x")) == STRING

    def test_null_is_any(self):
        assert infer_type(Null()) == ANY

    def test_unbound_variable(self):
        with pytest.raises(CalculusTypeError, match="unbound"):
            infer_type(var("x"))

    def test_env_lookup(self):
        assert infer_type(var("x"), env={"x": INT}) == INT

    def test_extent_with_schema(self, schema):
        t = infer_type(Extent("Employees"), schema)
        assert t == schema.extent_type("Employees")

    def test_extent_without_schema(self):
        assert infer_type(Extent("X")) == set_of(ANY)

    def test_record_and_projection(self, schema):
        comp = comprehension("set", path("e", "age"), ("e", Extent("Employees")))
        assert infer_type(comp, schema) == set_of(INT)

    def test_projection_of_missing_attribute(self, schema):
        comp = comprehension("set", path("e", "ghost"), ("e", Extent("Employees")))
        with pytest.raises(CalculusTypeError, match="ghost"):
            infer_type(comp, schema)

    def test_projection_of_scalar(self):
        with pytest.raises(CalculusTypeError, match="non-record"):
            infer_type(Proj(const(1), "a"))

    def test_arithmetic(self):
        assert infer_type(BinOp("+", const(1), const(2))) == INT
        assert infer_type(BinOp("+", const(1), const(2.0))) == FLOAT
        assert infer_type(BinOp("/", const(1), const(2))) == FLOAT

    def test_arithmetic_type_error(self):
        with pytest.raises(CalculusTypeError, match="string on both sides"):
            infer_type(BinOp("+", const(1), const("x")))
        with pytest.raises(CalculusTypeError, match="non-numeric"):
            infer_type(BinOp("-", const(1), const("x")))

    def test_string_concatenation_types(self):
        from repro.data.schema import STRING

        assert infer_type(BinOp("+", const("a"), const("b"))) == STRING
        with pytest.raises(CalculusTypeError, match="string on both sides"):
            infer_type(BinOp("+", const("a"), const(1.5)))

    def test_modulo_types(self):
        assert infer_type(BinOp("%", const(7), const(2))) == INT
        with pytest.raises(CalculusTypeError, match="non-numeric"):
            infer_type(BinOp("%", const("a"), const(2)))

    def test_comparison(self):
        assert infer_type(BinOp("<", const(1), const(2))) == BOOL
        with pytest.raises(CalculusTypeError):
            infer_type(BinOp("<", const(1), const("x")))

    def test_boolean_ops(self):
        assert infer_type(BinOp("and", const(True), const(False))) == BOOL
        with pytest.raises(CalculusTypeError, match="not bool"):
            infer_type(BinOp("and", const(1), const(True)))

    def test_if(self):
        assert infer_type(If(const(True), const(1), const(2))) == INT
        with pytest.raises(CalculusTypeError, match="condition"):
            infer_type(If(const(1), const(1), const(2)))
        with pytest.raises(CalculusTypeError, match="branches"):
            infer_type(If(const(True), const(1), const("x")))

    def test_lambda_and_apply(self):
        fn = Lambda("x", const(1))
        assert isinstance(infer_type(fn), FunctionType)
        assert infer_type(Apply(fn, const(5))) == INT
        with pytest.raises(CalculusTypeError, match="non-function"):
            infer_type(Apply(const(1), const(2)))

    def test_let(self):
        term = Let("x", const(1), BinOp("+", var("x"), const(1)))
        assert infer_type(term) == INT

    def test_not_and_isnull(self):
        assert infer_type(Not(const(True))) == BOOL
        assert infer_type(IsNull(const(1))) == BOOL

    def test_collection_constructors(self):
        assert infer_type(Zero("set")) == set_of(ANY)
        assert infer_type(Singleton("set", const(1))) == set_of(INT)
        merged = Merge("set", Singleton("set", const(1)), Zero("set"))
        assert infer_type(merged) == set_of(INT)

    def test_comprehension_monoid_carriers(self, schema):
        emp = ("e", Extent("Employees"))
        assert infer_type(comprehension("sum", path("e", "age"), emp), schema) == FLOAT
        assert infer_type(
            comprehension("all", BinOp(">", path("e", "age"), const(1)), emp), schema
        ) == BOOL
        assert infer_type(comprehension("avg", path("e", "salary"), emp), schema) == FLOAT

    def test_quantifier_head_must_be_bool(self, schema):
        with pytest.raises(CalculusTypeError, match="not bool"):
            infer_type(
                comprehension("all", path("e", "age"), ("e", Extent("Employees"))),
                schema,
            )

    def test_aggregate_head_must_be_numeric(self, schema):
        with pytest.raises(CalculusTypeError, match="not numeric"):
            infer_type(
                comprehension("sum", path("e", "name"), ("e", Extent("Employees"))),
                schema,
            )

    def test_generator_over_non_collection(self):
        with pytest.raises(CalculusTypeError, match="non-collection"):
            infer_type(comprehension("set", var("x"), ("x", const(1))))

    def test_set_into_list_ill_formed(self):
        inner = Singleton("set", const(1))
        with pytest.raises(CalculusTypeError, match="non-commutative"):
            infer_type(comprehension("list", var("x"), ("x", inner)))

    def test_filter_must_be_bool(self, schema):
        with pytest.raises(CalculusTypeError, match="filter"):
            infer_type(
                comprehension(
                    "set", var("e"), ("e", Extent("Employees")), path("e", "age")
                ),
                schema,
            )


class TestAlgebraTyping:
    def test_scan_select_reduce(self, schema):
        plan = Reduce(
            Select(Scan("Employees", "e"), BinOp(">", path("e", "age"), const(30))),
            "set",
            path("e", "name"),
        )
        assert infer_plan_type(plan, schema) == set_of(STRING)

    def test_join_types_merge(self, schema):
        plan = Reduce(
            Join(Scan("Employees", "e"), Scan("Employees", "u"),
                 BinOp("==", path("e", "age"), path("u", "age"))),
            "sum",
            const(1),
        )
        assert infer_plan_type(plan, schema) == FLOAT

    def test_bad_predicate_rejected(self, schema):
        plan = Reduce(
            Select(Scan("Employees", "e"), path("e", "age")),
            "set",
            var("e"),
        )
        with pytest.raises(AlgebraTypeError, match="expected bool"):
            infer_plan_type(plan, schema)

    def test_unnest_requires_collection(self, schema):
        plan = Reduce(
            Unnest(Scan("Employees", "e"), path("e", "age"), "x"),
            "sum",
            const(1),
        )
        with pytest.raises(AlgebraTypeError, match="non-collection"):
            infer_plan_type(plan, schema)

    def test_nest_output_type(self, schema):
        nest = Nest(
            OuterJoin(Scan("Employees", "e"), Scan("Employees", "u"),
                      BinOp("==", path("e", "age"), path("u", "age"))),
            "sum",
            path("u", "salary"),
            ("e",),
            ("u",),
            "m",
        )
        plan = Reduce(nest, "set", record(E=path("e", "name"), M=var("m")))
        result = infer_plan_type(plan, schema)
        assert result == set_of(record_of(E=STRING, M=FLOAT))

    def test_stream_root_rejected(self, schema):
        with pytest.raises(AlgebraTypeError, match="rooted at"):
            infer_plan_type(Scan("Employees", "e"), schema)

    def test_unknown_extent_is_any(self):
        plan = Reduce(Scan("Mystery", "x"), "set", var("x"))
        assert infer_plan_type(plan) == set_of(ANY)
