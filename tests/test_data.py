"""Unit tests for the data substrate: object store, indexes, and the
synthetic data generators."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.datagen import (
    ab_database,
    company_database,
    travel_database,
    university_database,
)
from repro.data.schema import INT, Schema
from repro.data.values import BagValue, ListValue, Record, SetValue


class TestDatabase:
    def test_extent_kinds(self):
        db = Database()
        db.add_extent("S", [1, 1, 2], kind="set")
        db.add_extent("B", [1, 1, 2], kind="bag")
        db.add_extent("L", [2, 1], kind="list")
        assert isinstance(db.extent("S"), SetValue) and len(db.extent("S")) == 2
        assert isinstance(db.extent("B"), BagValue) and len(db.extent("B")) == 3
        assert isinstance(db.extent("L"), ListValue)
        assert db.extent("L")[0] == 2

    def test_unknown_kind(self):
        db = Database()
        with pytest.raises(ValueError, match="unknown extent kind"):
            db.add_extent("X", [], kind="queue")

    def test_unknown_extent_lists_known(self):
        db = Database()
        db.add_extent("Known", [])
        with pytest.raises(KeyError, match="Known"):
            db.extent("Unknown")

    def test_cardinality_and_names(self):
        db = Database()
        db.add_extent("A", [1, 2, 3])
        db.add_extent("B", [])
        assert db.cardinality("A") == 3
        assert db.extent_names() == ("A", "B")
        assert db.has_extent("A") and not db.has_extent("C")

    def test_repr(self):
        db = Database()
        db.add_extent("A", [1])
        assert "A: 1" in repr(db)


class TestIndexes:
    def _db(self):
        db = Database()
        db.add_extent("E", [Record(k=i % 3, v=i) for i in range(9)])
        return db

    def test_create_and_lookup(self):
        db = self._db()
        db.create_index("E", "k")
        assert db.has_index("E", "k")
        assert len(db.index_lookup("E", "k", 0)) == 3
        assert db.index_lookup("E", "k", 99) == []

    def test_indexed_attributes(self):
        db = self._db()
        db.create_index("E", "k")
        db.create_index("E", "v")
        assert db.indexed_attributes("E") == ("k", "v")

    def test_lookup_without_index(self):
        db = self._db()
        with pytest.raises(KeyError, match="no index"):
            db.index_lookup("E", "k", 0)

    def test_index_on_missing_attribute(self):
        db = self._db()
        with pytest.raises(ValueError, match="lack"):
            db.create_index("E", "ghost")

    def test_planner_uses_index(self):
        from repro.calculus.terms import BinOp, Proj, Var, const
        from repro.algebra.operators import Reduce, Scan, Select
        from repro.engine.physical import PIndexScan
        from repro.engine.planner import PlannerOptions, plan_physical

        db = self._db()
        db.create_index("E", "k")
        plan = Reduce(
            Select(Scan("E", "e"), BinOp("==", Proj(Var("e"), "k"), const(1))),
            "sum",
            const(1),
        )
        physical = plan_physical(plan, db)
        assert isinstance(physical.children()[0], PIndexScan)
        assert physical.value() == 3
        # and it can be switched off
        without = plan_physical(plan, db, PlannerOptions(index_scans=False))
        assert not isinstance(without.children()[0], PIndexScan)
        assert without.value() == 3

    def test_index_scan_with_residual(self):
        from repro.core.optimizer import Optimizer

        db = self._db()
        db.create_index("E", "k")
        result = Optimizer(db).run_oql(
            "select distinct e.v from e in E where e.k = 1 and e.v > 3"
        )
        assert result == SetValue([4, 7])

    def test_index_never_changes_results(self):
        from repro.core.optimizer import Optimizer

        db = company_database(40, 6, seed=9)
        source = (
            "select distinct e.name from e in Employees "
            "where e.dno = 2 and e.age > 25"
        )
        before = Optimizer(db).run_oql(source)
        db.create_index("Employees", "dno")
        assert Optimizer(db).run_oql(source) == before


class TestDatagen:
    def test_determinism(self):
        a = company_database(seed=5)
        b = company_database(seed=5)
        assert a.extent("Employees") == b.extent("Employees")
        assert a.extent("Departments") == b.extent("Departments")

    def test_seed_changes_data(self):
        a = company_database(seed=5)
        b = company_database(seed=6)
        assert a.extent("Employees") != b.extent("Employees")

    def test_company_shapes(self):
        db = company_database(num_employees=30, num_departments=5)
        assert db.cardinality("Employees") == 30
        assert db.cardinality("Departments") == 5
        employee = next(iter(db.extent("Employees")))
        assert {"oid", "name", "age", "salary", "dno", "children", "manager"} <= set(
            employee
        )
        assert isinstance(employee["children"], SetValue)
        assert "children" in employee["manager"]

    def test_company_has_null_padding_cases(self):
        """Some employees must be childless and some departments empty so
        the outer operators' padding paths are exercised."""
        db = company_database(num_employees=40, num_departments=8, seed=1)
        employees = list(db.extent("Employees"))
        assert any(len(e["children"]) == 0 for e in employees)
        dnos = {e["dno"] for e in employees}
        departments = {d["dno"] for d in db.extent("Departments")}
        assert departments - dnos or dnos - departments

    def test_university_guarantees_full_enrollment(self):
        db = university_database(num_students=10, num_courses=8, seed=4)
        courses = {c["cno"] for c in db.extent("Courses") if c["title"] == "DB"}
        assert courses, "there must be at least one DB course"
        transcript = db.extent("Transcript")
        takers = {
            sid
            for sid in {t["id"] for t in transcript}
            if courses <= {t["cno"] for t in transcript if t["id"] == sid}
        }
        assert takers, "at least one student took all DB courses"

    def test_travel_has_arlington(self):
        db = travel_database(seed=2)
        names = {c["name"] for c in db.extent("Cities")}
        assert "Arlington" in names
        states = {s["name"] for s in db.extent("States")}
        assert "Texas" in states

    def test_ab_subset_flag(self):
        db = ab_database(size_a=10, size_b=20, subset=True, seed=2)
        a = set(db.extent("A"))
        b = set(db.extent("B"))
        assert a <= b
        db2 = ab_database(size_a=15, size_b=15, subset=False, seed=2)
        assert len(db2.extent("A")) == 15

    def test_schemas_cover_extents(self):
        for db in (
            company_database(5, 2),
            university_database(5, 3),
            travel_database(2, 2),
            ab_database(3, 3),
        ):
            for extent in db.extent_names():
                assert db.schema.has_extent(extent)


class TestSchemaHelpers:
    def test_schema_from_mapping(self):
        from repro.data.schema import record_of, schema_from_mapping

        schema = schema_from_mapping({"T": record_of(x=INT)})
        assert schema.has_extent("T")
        assert schema.extent_type("T").element == record_of(x=INT)
