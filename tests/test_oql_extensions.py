"""Tests for the OQL extensions: flatten, type-checked compilation, and
parser robustness (fuzzing)."""

from __future__ import annotations

import random
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.calculus.evaluator import evaluate
from repro.calculus.typing import CalculusTypeError
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.datagen import company_database, travel_database
from repro.data.values import SetValue
from repro.oql.lexer import OQLSyntaxError, tokenize
from repro.oql.parser import parse
from repro.oql.translator import parse_and_translate


class TestFlatten:
    @pytest.fixture(scope="class")
    def db(self):
        return travel_database(num_cities=4, hotels_per_city=3, seed=17)

    def test_flatten_set_of_sets(self, db):
        result = Optimizer(db).run_oql(
            "select distinct h.name from h in flatten( "
            "select c.hotels from c in Cities )"
        )
        expected = {
            hotel["name"]
            for city in db.extent("Cities")
            for hotel in city["hotels"]
        }
        assert result == SetValue(expected)

    def test_flatten_matches_manual_unnesting(self, db):
        flat = Optimizer(db).run_oql(
            "select distinct h.price from h in flatten( "
            "select c.hotels from c in Cities )"
        )
        manual = Optimizer(db).run_oql(
            "select distinct h.price from c in Cities, h in c.hotels"
        )
        assert flat == manual

    def test_flatten_unnests_through_pipeline(self, db):
        """flatten's comprehension must normalize away entirely."""
        term = parse_and_translate(
            "select distinct h.name from h in flatten( "
            "select c.hotels from c in Cities )",
            db.schema,
        )
        from repro.core.normalization import prepare
        from repro.calculus.terms import Comprehension, subterms

        prepared = prepare(term)
        inner = [
            s
            for s in subterms(prepared)
            if isinstance(s, Comprehension) and s is not prepared
        ]
        assert not inner, "flatten left residual nesting"

    def test_flatten_naive_agrees(self, db):
        source = (
            "count( flatten( select c.hotels from c in Cities ) )"
        )
        fast = Optimizer(db).run_oql(source)
        naive = Optimizer(db, OptimizerOptions(unnest=False)).run_oql(source)
        assert fast == naive


class TestTypecheckOption:
    @pytest.fixture(scope="class")
    def db(self):
        return company_database(10, 3, seed=17)

    def test_well_typed_query_passes(self, db):
        optimizer = Optimizer(db, OptimizerOptions(typecheck=True))
        result = optimizer.run_oql(
            "select distinct e.name from e in Employees where e.age > 30"
        )
        assert isinstance(result, SetValue)

    def test_bad_projection_rejected_at_compile_time(self, db):
        optimizer = Optimizer(db, OptimizerOptions(typecheck=True))
        with pytest.raises(CalculusTypeError, match="ghost"):
            optimizer.compile_oql(
                "select distinct e.ghost from e in Employees"
            )

    def test_bad_comparison_rejected(self, db):
        optimizer = Optimizer(db, OptimizerOptions(typecheck=True))
        with pytest.raises(CalculusTypeError):
            optimizer.compile_oql(
                "select distinct e.name from e in Employees "
                'where e.age > "old"'
            )

    def test_without_typecheck_error_surfaces_at_runtime(self, db):
        from repro.core.optimizer import OptimizerOptions
        from repro.errors import QueryError

        optimizer = Optimizer(db, OptimizerOptions(typecheck=False))
        compiled = optimizer.compile_oql(
            "select distinct e.ghost from e in Employees"
        )
        # Even with static checking off, the failure must surface as a
        # structured QueryError, not a raw KeyError.
        with pytest.raises(QueryError):
            compiled.execute(db)


class TestParserRobustness:
    """The front end must fail with OQLSyntaxError, never crash."""

    @settings(max_examples=200, deadline=None)
    @given(
        st.text(
            alphabet=string.ascii_letters + string.digits + " .,()<>=!+-*/\"'",
            max_size=60,
        )
    )
    def test_parser_never_crashes(self, source):
        try:
            parse(source)
        except OQLSyntaxError:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.text(max_size=40))
    def test_lexer_never_crashes(self, source):
        try:
            tokenize(source)
        except OQLSyntaxError:
            pass

    def test_shuffled_valid_tokens(self):
        """Random shuffles of a valid query's tokens must not crash."""
        source = (
            "select distinct e.name from e in Employees where e.age > 30"
        )
        words = source.split()
        rng = random.Random(7)
        for _ in range(50):
            rng.shuffle(words)
            try:
                parse(" ".join(words))
            except OQLSyntaxError:
                pass

    def test_error_messages_carry_position(self):
        with pytest.raises(OQLSyntaxError, match="line 1"):
            parse("select from")
