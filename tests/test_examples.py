"""Smoke tests: every example script must run end to end, and the REPL must
process a scripted session."""

from __future__ import annotations

import io
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": str(script.parent.parent / "src")},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "university.py",
        "company_analytics.py",
        "calculus_playground.py",
        "dba_tools.py",
    } <= names


class TestRepl:
    def _run(self, lines):
        out = io.StringIO()
        inputs = iter(lines)

        import builtins

        from repro.cli import repl

        original = builtins.input

        def fake_input(prompt=""):
            try:
                return next(inputs)
            except StopIteration:
                raise EOFError

        builtins.input = fake_input
        try:
            repl("company", out=out)
        finally:
            builtins.input = original
        return out.getvalue()

    def test_scripted_session(self):
        text = self._run(
            [
                "\\plan",
                "select distinct e.name",
                "from e in Employees where e.age > 30;",
                "\\db ab",
                "for all a in A: exists b in B: a = b;",
                "\\quit",
            ]
        )
        assert "\\plan on" in text
        assert "reduce[" in text
        assert "switched to 'ab'" in text
        assert "rows)" in text

    def test_bad_query_is_survivable(self):
        text = self._run(["selectt nonsense;", "count( select e from e in Employees );"])
        assert "error:" in text
        assert "(" in text  # the second query still ran

    def test_unknown_meta_command(self):
        text = self._run(["\\frobnicate", "\\db nowhere"])
        assert "unknown meta-command" in text
        assert "unknown database" in text

    def test_batch_toggle_and_size(self):
        text = self._run(
            [
                "\\batch",
                "count( select e from e in Employees );",
                "\\batch 16",
                "count( select e from e in Employees );",
                "\\batch nope",
                "\\quit",
            ]
        )
        assert "\\batch off (batch execution)" in text
        assert "\\batch on (16 rows per chunk)" in text
        assert "usage: \\batch" in text
        # both modes ran the query (two result lines)
        assert text.count("  60") == 2
