"""Algebraic laws: the equivalences the optimizer's rewrite rules rely on,
verified empirically with hypothesis over random databases and predicates.

Every rule in ``ALGEBRAIC_RULES`` and the join-permutation phase assumes an
equivalence over streams; these tests state each law directly as
plan-pair-agreement, independent of the rule implementations.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.evaluator import PlanEvaluator
from repro.algebra.operators import (
    Join,
    Nest,
    Operator,
    OuterJoin,
    Reduce,
    Scan,
    Select,
)
from repro.calculus.terms import BinOp, Const, Term, conj, const, path
from repro.data.database import Database
from repro.data.values import BagValue, Record

_SETTINGS = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def databases(draw):
    db = Database()
    r_size = draw(st.integers(min_value=0, max_value=6))
    s_size = draw(st.integers(min_value=0, max_value=6))
    db.add_extent(
        "R",
        [
            Record(
                i=i,
                a=draw(st.integers(min_value=0, max_value=3)),
                b=draw(st.integers(min_value=0, max_value=3)),
            )
            for i in range(r_size)
        ],
    )
    db.add_extent(
        "S",
        [
            Record(j=j, c=draw(st.integers(min_value=0, max_value=3)))
            for j in range(s_size)
        ],
    )
    return db


@st.composite
def predicates(draw, columns):
    """A random conjunction of comparisons over the given (var, attr) pairs."""
    parts = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        var_name, attr = draw(st.sampled_from(columns))
        op = draw(st.sampled_from(["==", "<", ">=", "!="]))
        parts.append(
            BinOp(op, path(var_name, attr), const(draw(st.integers(0, 3))))
        )
    return conj(*parts)


def stream_bag(plan: Operator, db: Database) -> BagValue:
    """The output stream as a bag of frozen environments."""
    evaluator = PlanEvaluator(db)
    return BagValue(
        tuple(sorted(env.items(), key=lambda kv: kv[0]))
        for env in evaluator.stream(plan)
    )


R_COLS = [("r", "a"), ("r", "b")]
S_COLS = [("s", "c")]
JOIN_PRED = BinOp("==", path("r", "a"), path("s", "c"))


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS), q=predicates(R_COLS))
def test_select_fusion(db, p, q):
    split = Select(Select(Scan("R", "r"), p), q)
    fused = Select(Scan("R", "r"), conj(p, q))
    assert stream_bag(split, db) == stream_bag(fused, db)


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS + S_COLS))
def test_join_commutativity(db, p):
    left = Join(Scan("R", "r"), Scan("S", "s"), p)
    right = Join(Scan("S", "s"), Scan("R", "r"), p)
    assert stream_bag(left, db) == stream_bag(right, db)


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS))
def test_selection_pushes_below_join(db, p):
    above = Select(Join(Scan("R", "r"), Scan("S", "s"), JOIN_PRED), p)
    below = Join(Select(Scan("R", "r"), p), Scan("S", "s"), JOIN_PRED)
    assert stream_bag(above, db) == stream_bag(below, db)


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS))
def test_selection_pushes_below_outer_join_left_only(db, p):
    above = Select(OuterJoin(Scan("R", "r"), Scan("S", "s"), JOIN_PRED), p)
    below = OuterJoin(Select(Scan("R", "r"), p), Scan("S", "s"), JOIN_PRED)
    assert stream_bag(above, db) == stream_bag(below, db)


@_SETTINGS
@given(db=databases(), p=predicates(S_COLS))
def test_right_only_conjunct_moves_into_outer_join_input(db, p):
    """The join-pred-push-right law for OUTER joins: a right-only conjunct
    inside the join predicate is the same as a selection on the right input
    (a failing right tuple pads either way)."""
    in_pred = OuterJoin(Scan("R", "r"), Scan("S", "s"), conj(JOIN_PRED, p))
    as_select = OuterJoin(
        Scan("R", "r"), Select(Scan("S", "s"), p), JOIN_PRED
    )
    assert stream_bag(in_pred, db) == stream_bag(as_select, db)


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS))
def test_select_through_nest_on_group_columns(db, p):
    """Filtering emitted groups on group-by columns equals filtering the
    nest's input — the select-through-nest law."""
    join = OuterJoin(Scan("R", "r"), Scan("S", "s"), JOIN_PRED)
    nest_above = Select(
        Nest(join, "sum", const(1), ("r",), ("s",), "m"), p
    )
    nest_below = Nest(
        OuterJoin(Select(Scan("R", "r"), p), Scan("S", "s"), JOIN_PRED),
        "sum",
        const(1),
        ("r",),
        ("s",),
        "m",
    )
    assert stream_bag(nest_above, db) == stream_bag(nest_below, db)


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS))
def test_reduce_pred_equals_select_below(db, p):
    evaluator_a = PlanEvaluator(db)
    evaluator_b = PlanEvaluator(db)
    with_pred = Reduce(Scan("R", "r"), "sum", path("r", "a"), p)
    with_select = Reduce(Select(Scan("R", "r"), p), "sum", path("r", "a"))
    assert evaluator_a.evaluate(with_pred) == evaluator_b.evaluate(with_select)


@_SETTINGS
@given(db=databases())
def test_join_associativity(db):
    """(R ⋈ S) ⋈ S' = R ⋈ (S ⋈ S') with predicates placed when available."""
    p_rs = BinOp("==", path("r", "a"), path("s", "c"))
    p_st = BinOp("==", path("s", "c"), path("t", "c"))
    left_deep = Join(
        Join(Scan("R", "r"), Scan("S", "s"), p_rs), Scan("S", "t"), p_st
    )
    right_deep = Join(
        Scan("R", "r"), Join(Scan("S", "s"), Scan("S", "t"), p_st), p_rs
    )
    assert stream_bag(left_deep, db) == stream_bag(right_deep, db)


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS + S_COLS))
def test_outer_join_preserves_left_multiplicity(db, p):
    """Every left tuple appears at least once in a left outer-join — the
    non-blocking property the unnesting algorithm depends on."""
    join = OuterJoin(Scan("R", "r"), Scan("S", "s"), p)
    evaluator = PlanEvaluator(db)
    left_tuples = [env["r"] for env in evaluator.stream(join)]
    assert set(left_tuples) == set(db.extent("R"))


@_SETTINGS
@given(db=databases(), p=predicates(R_COLS + S_COLS))
def test_nest_emits_one_group_per_left_tuple(db, p):
    """Nest over outer-join restores exactly the left stream (with the
    aggregate attached) — the splice-invariance at the heart of C8/C9."""
    join = OuterJoin(Scan("R", "r"), Scan("S", "s"), p)
    nest = Nest(join, "sum", const(1), ("r",), ("s",), "m")
    evaluator = PlanEvaluator(db)
    grouped = [env["r"] for env in evaluator.stream(nest)]
    assert sorted(grouped, key=repr) == sorted(db.extent("R"), key=repr)
