"""Unit tests for the persistence layer (repro.data.storage) and ANALYZE
statistics."""

from __future__ import annotations

import json

import pytest

from repro.data.database import Database
from repro.data.datagen import company_database, travel_database
from repro.data.schema import INT, STRING, Schema, record_of, set_of
from repro.data.storage import (
    StorageError,
    database_from_dict,
    database_to_dict,
    decode_type,
    decode_value,
    encode_type,
    encode_value,
    load_database,
    save_database,
)
from repro.data.values import NULL, BagValue, ListValue, Record, SetValue


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            42,
            3.5,
            "text",
            True,
            False,
            NULL,
            Record(a=1, b="x"),
            SetValue([1, 2, 3]),
            BagValue([1, 1, 2]),
            ListValue([3, 1, 2]),
            Record(
                nested=SetValue([Record(k=1), Record(k=2)]),
                bags=BagValue(["a", "a"]),
                maybe=NULL,
            ),
            SetValue([ListValue([1, 2]), ListValue([2, 1])]),
        ],
        ids=repr,
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bag_multiplicity_preserved(self):
        bag = BagValue([Record(x=1)] * 3 + [Record(x=2)])
        restored = decode_value(encode_value(bag))
        assert restored.count(Record(x=1)) == 3

    def test_encoded_form_is_json(self):
        value = Record(s=SetValue([1, NULL]))
        json.dumps(encode_value(value))  # must not raise

    def test_decode_bad_tag(self):
        with pytest.raises(StorageError, match="unknown value tag"):
            decode_value({"$mystery": 1})

    def test_encode_unsupported(self):
        with pytest.raises(StorageError, match="cannot encode"):
            encode_value(object())


class TestTypeRoundTrip:
    @pytest.mark.parametrize(
        "type_",
        [
            INT,
            STRING,
            set_of(INT),
            record_of(a=INT, b=set_of(record_of(x=STRING))),
        ],
        ids=str,
    )
    def test_round_trip(self, type_):
        assert decode_type(encode_type(type_)) == type_

    def test_unknown_primitive(self):
        with pytest.raises(StorageError, match="unknown primitive"):
            decode_type("quaternion")


class TestDatabaseRoundTrip:
    def test_company_database(self, tmp_path):
        db = company_database(num_employees=12, num_departments=3, seed=13)
        db.create_index("Employees", "dno")
        path = tmp_path / "company.json"
        save_database(db, path)
        restored = load_database(path)
        for extent in db.extent_names():
            assert restored.extent(extent) == db.extent(extent)
        assert restored.schema.extents == db.schema.extents
        assert restored.schema.classes == db.schema.classes
        assert restored.has_index("Employees", "dno")
        assert restored.index_lookup("Employees", "dno", 1) == sorted(
            db.index_lookup("Employees", "dno", 1), key=repr
        ) or len(restored.index_lookup("Employees", "dno", 1)) == len(
            db.index_lookup("Employees", "dno", 1)
        )

    def test_queries_agree_after_round_trip(self, tmp_path):
        from repro.core.optimizer import Optimizer

        db = travel_database(num_cities=3, hotels_per_city=3, seed=13)
        path = tmp_path / "travel.json"
        save_database(db, path)
        restored = load_database(path)
        source = (
            "select distinct h.name from c in Cities, h in c.hotels "
            "where h.price < 200"
        )
        assert Optimizer(restored).run_oql(source) == Optimizer(db).run_oql(source)

    def test_extent_kinds_preserved(self, tmp_path):
        db = Database()
        db.add_extent("S", [1, 2], kind="set")
        db.add_extent("B", [1, 1], kind="bag")
        db.add_extent("L", [2, 1], kind="list")
        path = tmp_path / "kinds.json"
        save_database(db, path)
        restored = load_database(path)
        assert isinstance(restored.extent("S"), SetValue)
        assert isinstance(restored.extent("B"), BagValue)
        assert isinstance(restored.extent("L"), ListValue)
        assert restored.extent("L") == ListValue([2, 1])

    def test_bad_format_marker(self):
        with pytest.raises(StorageError, match="format marker"):
            database_from_dict({"format": "something-else"})

    def test_bad_version(self):
        with pytest.raises(StorageError, match="version"):
            database_from_dict({"format": "repro-db", "version": 99})

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(StorageError, match="corrupt"):
            load_database(path)

    def test_dict_form_is_json_serializable(self):
        db = company_database(num_employees=5, num_departments=2, seed=13)
        json.dumps(database_to_dict(db))


from hypothesis import given, settings, strategies as st

_scalars = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
    st.just(NULL),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=4),
            children,
            max_size=3,
        ).map(Record),
        st.lists(children, max_size=4).map(SetValue),
        st.lists(children, max_size=4).map(BagValue),
        st.lists(children, max_size=4).map(ListValue),
    ),
    max_leaves=12,
)


class TestValueRoundTripProperty:
    """Hypothesis: arbitrary nested values survive the round trip."""

    @settings(max_examples=150, deadline=None)
    @given(value=_values)
    def test_round_trip(self, value):
        restored = decode_value(encode_value(value))
        assert restored == value


class TestAnalyze:
    def test_distinct_counts(self):
        db = Database()
        db.add_extent("E", [Record(k=i % 3, v=i) for i in range(9)])
        assert db.distinct_count("E", "k") is None  # not analyzed yet
        db.analyze()
        assert db.distinct_count("E", "k") == 3
        assert db.distinct_count("E", "v") == 9
        assert db.distinct_count("E", "ghost") is None

    def test_cost_model_uses_statistics(self):
        from repro.algebra.operators import Scan, Select
        from repro.calculus.terms import BinOp, Proj, Var, const
        from repro.engine.cost import CostModel

        db = Database()
        # the id attribute keeps all 100 records distinct in the set extent
        db.add_extent("E", [Record(id=i, k=i % 2, u=i % 50) for i in range(100)])
        db.analyze()
        model = CostModel(db)
        scan = Scan("E", "e")
        coarse = Select(scan, BinOp("==", Proj(Var("e"), "k"), const(1)))
        fine = Select(scan, BinOp("==", Proj(Var("e"), "u"), const(1)))
        # k has 2 distinct values, u has 50: the estimates must reflect it.
        assert model.cardinality(coarse) == pytest.approx(100 / 2)
        assert model.cardinality(fine) == pytest.approx(100 / 50)

    def test_unanalyzed_falls_back_to_default(self):
        from repro.algebra.operators import Scan, Select
        from repro.calculus.terms import BinOp, Proj, Var, const
        from repro.engine.cost import CostModel

        db = Database()
        db.add_extent("E", [Record(k=i) for i in range(10)])
        model = CostModel(db)
        select = Select(Scan("E", "e"), BinOp("==", Proj(Var("e"), "k"), const(1)))
        assert model.cardinality(select) == pytest.approx(10 * 0.1)
