"""EXPLAIN ANALYZE accounting: per-operator row counts must be an honest
record of the execution.

Two properties, checked across query shapes and both demo and random
databases:

* the **root** operator's row count equals the result's cardinality — one
  row per element of a collection result, exactly one row for a scalar
  (aggregates, quantifiers);
* the accounting is **deterministic** — re-running the same query yields
  the same per-operator counts (fresh pipeline) and the same counts again
  through a cached plan (long-lived pipeline), so EXPLAIN ANALYZE output
  can be compared across runs.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import QueryPipeline
from repro.data.values import CollectionValue
from repro.testing.fuzz import FuzzConfig, generate_sample

QUERIES = (
    "select distinct e.name from e in Employees",
    "select e from e in Employees where e.salary > 30000",
    "select struct( D: d.dno, N: count( select e from e in Employees "
    "where e.dno = d.dno ) ) from d in Departments",
    "sum( select e.salary from e in Employees )",
    "count( select e from e in Employees where e.age < 40 )",
    "exists e in Employees: e.salary > 10",
    "select e.dno, avg(e.salary) as pay from Employees e group by e.dno",
)


def _expected_root_rows(result) -> int:
    return len(result) if isinstance(result, CollectionValue) else 1


@pytest.mark.parametrize("source", QUERIES)
def test_root_rows_match_result_cardinality(source, company_db):
    stats = QueryPipeline(company_db).run_oql_stats(source)
    root = stats.operators[0]
    assert root.depth == 0
    assert root.rows_produced == _expected_root_rows(stats.result), (
        f"root accounting for {source!r}: reported {root.rows_produced}, "
        f"result has {_expected_root_rows(stats.result)}"
    )


@pytest.mark.parametrize("source", QUERIES)
def test_totals_stable_across_reruns(source, company_db):
    first = QueryPipeline(company_db).run_oql_stats(source)
    second = QueryPipeline(company_db).run_oql_stats(source)
    assert first.result == second.result
    assert first.total_rows == second.total_rows
    # Operator labels embed compilation-unique variable names, so compare
    # the shape of the accounting (counts and tree depths), not the labels.
    assert [(op.rows_produced, op.depth) for op in first.operators] == [
        (op.rows_produced, op.depth) for op in second.operators
    ]


def test_cached_plan_reports_identical_counts(company_db):
    source = QUERIES[1]
    pipeline = QueryPipeline(company_db)
    fresh = pipeline.run_oql_stats(source)
    assert not fresh.from_cache
    cached = pipeline.run_oql_stats(source)
    assert cached.from_cache
    assert cached.total_rows == fresh.total_rows
    assert cached.operators[0].rows_produced == fresh.operators[0].rows_produced


def test_root_accounting_on_random_samples():
    config = FuzzConfig(seed=9)
    checked = 0
    for iteration in range(30):
        source, params, db = generate_sample(config, iteration)
        pipeline = QueryPipeline(db)
        try:
            stats = pipeline.run_oql_stats(source, **params)
        except Exception:
            continue  # oracle coverage elsewhere; here only accounting
        if not stats.operators:
            continue  # unnesting disabled paths have no physical operators
        assert stats.operators[0].rows_produced == _expected_root_rows(
            stats.result
        ), f"root accounting broken for fuzzed query {source!r}"
        checked += 1
    assert checked >= 20  # the sample set must actually exercise the check


def test_report_mentions_rows_and_cache(company_db):
    pipeline = QueryPipeline(company_db)
    pipeline.run_oql_stats(QUERIES[0])
    stats = pipeline.run_oql_stats(QUERIES[0])
    text = stats.report()
    assert "rows" in text
    assert "cached plan" in text
