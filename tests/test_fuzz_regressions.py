"""Replay of fuzzer-found repro artifacts.

Every JSON file under ``tests/fuzz_repros/`` is a self-contained sample —
query, parameters, schema, data, indexes — that the differential fuzzer
once flagged.  Each one is replayed through every execution path on every
test run:

* ``expect: agreement`` artifacts pin *fixed* bugs: all paths must agree,
  forever;
* ``expect: disagreement`` artifacts pin *known divergences* (documented
  model limitations): the suite fails loudly if the behaviour silently
  changes, so the documentation can never rot.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing.oracle import check_sample
from repro.testing.repro_io import load_repro

REPRO_DIR = Path(__file__).parent / "fuzz_repros"
REPRO_FILES = sorted(REPRO_DIR.glob("*.json"))


def test_repro_directory_is_populated():
    assert REPRO_FILES, f"no repro artifacts under {REPRO_DIR}"


@pytest.mark.parametrize(
    "path", REPRO_FILES, ids=[p.stem for p in REPRO_FILES]
)
def test_replay_repro(path: Path):
    data = json.loads(path.read_text())
    expect = data.get("expect", "agreement")
    assert expect in ("agreement", "disagreement"), f"bad expect in {path.name}"

    source, params, db = load_repro(path)
    verdict = check_sample(source, params, db)
    if expect == "agreement":
        assert verdict.agreed, (
            f"{path.name} regressed — paths disagree again:\n{verdict.describe()}"
        )
    else:
        assert not verdict.agreed, (
            f"{path.name} is pinned as a known divergence but all paths now "
            f"agree — the limitation was fixed; update the artifact (and its "
            f"documentation) to expect agreement:\n{verdict.describe()}"
        )


@pytest.mark.parametrize(
    "path", REPRO_FILES, ids=[p.stem for p in REPRO_FILES]
)
def test_repro_files_are_well_formed(path: Path):
    data = json.loads(path.read_text())
    assert data["version"] == 1
    assert data["description"], f"{path.name} needs a description"
    assert isinstance(data["source"], str) and data["source"]
    # The loader must round-trip every artifact without error.
    source, params, db = load_repro(path)
    assert source == data["source"]
    assert set(db.extent_names()) == set(data["extents"])
