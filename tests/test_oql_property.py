"""Grammar-directed OQL fuzzing: random *valid* OQL over the company schema
must (a) parse, (b) round-trip through the unparser, (c) agree between the
naive and optimized strategies, and (d) classify without error."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.classify import classify_oql
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.datagen import company_database
from repro.oql.parser import parse
from repro.oql.pretty import unparse

_DB = company_database(num_employees=12, num_departments=4, seed=3)

_SETTINGS = settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# -- strategy: random OQL text over Employees/Departments -------------------

_num_attrs = st.sampled_from(["e.age", "e.salary", "e.dno", "e.oid"])
_dep_attrs = st.sampled_from(["d.dno", "d.budget"])
_compare = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def scalar_exprs(draw, var="e"):
    base = draw(
        st.sampled_from(["e.age", "e.salary", "e.dno"]).map(
            lambda a: a.replace("e.", f"{var}.")
        )
    )
    if draw(st.booleans()):
        op = draw(st.sampled_from(["+", "-", "*"]))
        return f"({base} {op} {draw(st.integers(0, 9))})"
    return base


@st.composite
def aggregates(draw):
    fn = draw(st.sampled_from(["count", "sum", "max", "min", "avg"]))
    inner_pred = draw(predicates(var="u", depth=0))
    arg = f"select u.salary from u in Employees where {inner_pred}"
    if draw(st.booleans()):
        # correlated
        arg += " and u.dno = e.dno"
    return f"{fn}( {arg} )"


@st.composite
def predicates(draw, var="e", depth=1):
    kind = draw(st.integers(0, 5 if depth > 0 else 2))
    if kind == 0:
        return f"{draw(scalar_exprs(var))} {draw(_compare)} {draw(st.integers(0, 100))}"
    if kind == 1:
        left = draw(predicates(var=var, depth=0))
        right = draw(predicates(var=var, depth=0))
        op = draw(st.sampled_from(["and", "or"]))
        return f"({left} {op} {right})"
    if kind == 2:
        return f"not ({draw(predicates(var=var, depth=0))})"
    if kind == 3:
        return f"{draw(scalar_exprs(var))} > {draw(aggregates())}"
    if kind == 4:
        quantifier = draw(st.sampled_from(["exists", "for all"]))
        body = draw(st.sampled_from(["c.age > 3", "c.age < 9"]))
        return f"{quantifier} c in {var}.children: {body}"
    return (
        f"{var}.dno in ( select d.dno from d in Departments "
        f"where d.budget > {draw(st.integers(0, 500)) * 1000} )"
    )


@st.composite
def queries(draw):
    distinct = "distinct " if draw(st.booleans()) else ""
    projection = draw(
        st.sampled_from(
            [
                "e.name",
                "struct( N: e.name, A: e.age )",
                "struct( D: e.dno, K: count( select c from c in e.children ) )",
            ]
        )
    )
    pred = draw(predicates())
    return f"select {distinct}{projection} from e in Employees where {pred}"


# -- the properties -----------------------------------------------------------


@_SETTINGS
@given(source=queries())
def test_generated_oql_parses_and_round_trips(source):
    ast = parse(source)
    assert parse(unparse(ast)) == ast


@_SETTINGS
@given(source=queries())
def test_generated_oql_strategies_agree(source):
    optimized = Optimizer(_DB).run_oql(source)
    naive = Optimizer(_DB, OptimizerOptions(unnest=False)).run_oql(source)
    assert optimized == naive


@_SETTINGS
@given(source=queries())
def test_generated_oql_classifies(source):
    report = classify_oql(source, _DB.schema)
    assert report.dominant in ("flat", "N", "J", "A", "JA")


@_SETTINGS
@given(source=queries())
def test_generated_oql_typechecks(source):
    compiled = Optimizer(
        _DB, OptimizerOptions(typecheck=True)
    ).compile_oql(source)
    assert compiled.optimized is not None
