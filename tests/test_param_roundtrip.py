"""Property: preparing a query never changes its meaning.

For every corpus query, replacing each literal with a ``:pN`` placeholder
(:func:`repro.oql.params.parameterize_literals`) and binding the extracted
values at execution time must return exactly what the literal query
returns — the prepared plan is the *same* plan, specialized at bind time
rather than compile time.  Dedicated cases cover NULL-valued and
collection-valued bindings, which literals cannot even express.
"""

from __future__ import annotations

import pytest

from corpus import CORPUS
from repro.core.pipeline import QueryPipeline
from repro.data.database import Database
from repro.data.values import NULL, Record, SetValue
from repro.oql.params import parameterize_literals

CORPUS_IDS = [query.name for query in CORPUS]


@pytest.mark.parametrize("query", CORPUS, ids=CORPUS_IDS)
def test_corpus_round_trip(query, databases):
    db = databases[query.family]
    literal_result = QueryPipeline(db).run_oql(query.oql)

    parameterized, params = parameterize_literals(query.oql)
    bound_result = QueryPipeline(db).run_oql(parameterized, **params)
    assert bound_result == literal_result

    if params:
        # The parameterized source must not contain the literals any more.
        assert parameterized != query.oql


@pytest.mark.parametrize("query", CORPUS, ids=CORPUS_IDS)
def test_round_trip_through_one_cached_plan(query, databases):
    """Binding different... or the same values twice reuses one plan."""
    db = databases[query.family]
    pipeline = QueryPipeline(db)
    parameterized, params = parameterize_literals(query.oql)
    first = pipeline.run_oql(parameterized, **params)
    hits = pipeline.plan_cache.hits
    second = pipeline.run_oql(parameterized, **params)
    assert second == first
    assert pipeline.plan_cache.hits == hits + 1


@pytest.fixture()
def small_db() -> Database:
    db = Database()
    db.add_extent(
        "E",
        [
            Record(oid=0, k=1, v=10),
            Record(oid=1, k=2, v=NULL),
            Record(oid=2, k=NULL, v=30),
        ],
    )
    db.create_index("E", "k")
    return db


class TestNullParams:
    def test_null_equality_binding_matches_nil_literal(self, small_db):
        pipeline = QueryPipeline(small_db)
        literal = pipeline.run_oql("select e.oid from e in E where e.k = nil")
        bound = pipeline.run_oql(
            "select e.oid from e in E where e.k = :k", k=NULL
        )
        assert bound == literal
        assert len(bound) == 0  # NULL = NULL is NULL, which filters out

    def test_null_binding_in_arithmetic_propagates(self, small_db):
        result = QueryPipeline(small_db).run_oql(
            "select e.v + :delta from e in E where e.oid = 0", delta=NULL
        )
        assert list(result.elements()) == [NULL]

    def test_python_none_binds_as_null(self, small_db):
        result = QueryPipeline(small_db).run_oql(
            "select e.oid from e in E where e.k = :k", k=None
        )
        assert len(result) == 0


class TestCollectionParams:
    def test_membership_in_collection_binding(self, small_db):
        result = QueryPipeline(small_db).run_oql(
            "select e.oid from e in E where e.k in :ks", ks=SetValue([1, 2])
        )
        assert sorted(result.elements()) == [0, 1]

    def test_collection_binding_as_generator_domain(self, small_db):
        result = QueryPipeline(small_db).run_oql(
            "select distinct k * 2 from k in :ks", ks=SetValue([1, 2, 3])
        )
        assert sorted(result.elements()) == [2, 4, 6]

    def test_empty_collection_binding(self, small_db):
        result = QueryPipeline(small_db).run_oql(
            "select e.oid from e in E where e.k in :ks", ks=SetValue([])
        )
        assert len(result) == 0

    def test_same_plan_serves_different_collection_bindings(self, small_db):
        pipeline = QueryPipeline(small_db)
        source = "select e.oid from e in E where e.k in :ks"
        first = pipeline.run_oql(source, ks=SetValue([1]))
        hits = pipeline.plan_cache.hits
        second = pipeline.run_oql(source, ks=SetValue([2]))
        assert pipeline.plan_cache.hits == hits + 1
        assert sorted(first.elements()) == [0]
        assert sorted(second.elements()) == [1]
