"""Unit tests for the runtime value universe (repro.data.values)."""

from __future__ import annotations

import pytest

from repro.data.values import (
    NULL,
    BagValue,
    ListValue,
    NullValue,
    Record,
    SetValue,
    ensure_hashable,
    is_collection,
    is_null,
)


class TestNull:
    def test_singleton(self):
        assert NullValue() is NULL

    def test_equality(self):
        assert NULL == NullValue()
        assert NULL != 0
        assert NULL != None  # noqa: E711 - NULL is not Python None

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null(False)

    def test_no_truth_value(self):
        with pytest.raises(TypeError):
            bool(NULL)

    def test_hashable(self):
        assert len({NULL, NullValue()}) == 1

    def test_repr(self):
        assert repr(NULL) == "NULL"


class TestRecord:
    def test_access(self):
        record = Record(name="Smith", age=40)
        assert record["name"] == "Smith"
        assert record["age"] == 40

    def test_missing_attribute_message(self):
        record = Record(name="Smith")
        with pytest.raises(KeyError, match="age"):
            record["age"]

    def test_structural_equality_ignores_order(self):
        assert Record(a=1, b=2) == Record(b=2, a=1)

    def test_inequality(self):
        assert Record(a=1) != Record(a=2)
        assert Record(a=1) != Record(a=1, b=2)

    def test_hash_consistency(self):
        assert hash(Record(a=1, b=2)) == hash(Record(b=2, a=1))
        assert len({Record(a=1), Record(a=1)}) == 1

    def test_immutable(self):
        record = Record(a=1)
        with pytest.raises(AttributeError):
            record.a = 2  # type: ignore[attr-defined]

    def test_with_field(self):
        record = Record(a=1)
        extended = record.with_field("b", 2)
        assert extended == Record(a=1, b=2)
        assert record == Record(a=1), "original must be unchanged"

    def test_mapping_interface(self):
        record = Record(a=1, b=2)
        assert set(record) == {"a", "b"}
        assert len(record) == 2
        assert record.attributes() == ("a", "b")

    def test_from_mapping(self):
        assert Record({"x": 1}, y=2) == Record(x=1, y=2)

    def test_nested_records_hash(self):
        inner = Record(x=1)
        outer = Record(inner=inner, s=SetValue([1, 2]))
        assert hash(outer) == hash(Record(s=SetValue([2, 1]), inner=Record(x=1)))

    def test_repr_is_sorted(self):
        assert repr(Record(b=2, a=1)) == "<a=1, b=2>"


class TestSetValue:
    def test_dedup(self):
        assert len(SetValue([1, 1, 2])) == 2

    def test_union(self):
        assert SetValue([1, 2]).union(SetValue([2, 3])) == SetValue([1, 2, 3])

    def test_membership(self):
        assert 1 in SetValue([1])
        assert 2 not in SetValue([1])

    def test_equality_and_hash(self):
        assert SetValue([1, 2]) == SetValue([2, 1])
        assert len({SetValue([1, 2]), SetValue([2, 1])}) == 1

    def test_not_equal_to_bag(self):
        assert SetValue([1]) != BagValue([1])

    def test_immutable(self):
        value = SetValue([1])
        with pytest.raises(AttributeError):
            value._items = frozenset()  # type: ignore[attr-defined]

    def test_elements_with_records(self):
        value = SetValue([Record(a=1), Record(a=1), Record(a=2)])
        assert len(value) == 2


class TestBagValue:
    def test_multiplicity(self):
        bag = BagValue([1, 1, 2])
        assert bag.count(1) == 2
        assert bag.count(2) == 1
        assert bag.count(3) == 0
        assert len(bag) == 3

    def test_additive_union(self):
        merged = BagValue([1]).additive_union(BagValue([1, 2]))
        assert merged.count(1) == 2
        assert merged.count(2) == 1

    def test_equality_is_count_sensitive(self):
        assert BagValue([1, 1]) != BagValue([1])
        assert BagValue([1, 2]) == BagValue([2, 1])

    def test_elements_repeats(self):
        assert sorted(BagValue([3, 3, 5]).elements()) == [3, 3, 5]

    def test_from_counts_drops_nonpositive(self):
        bag = BagValue.from_counts({1: 2, 2: 0})
        assert bag.count(1) == 2
        assert 2 not in bag

    def test_hashable(self):
        assert len({BagValue([1, 1]), BagValue([1, 1])}) == 1


class TestListValue:
    def test_order_sensitive_equality(self):
        assert ListValue([1, 2]) != ListValue([2, 1])
        assert ListValue([1, 2]) == ListValue([1, 2])

    def test_concat(self):
        assert ListValue([1]).concat(ListValue([2])) == ListValue([1, 2])

    def test_indexing(self):
        assert ListValue([7, 8])[1] == 8

    def test_duplicates_preserved(self):
        assert len(ListValue([1, 1])) == 2

    def test_hashable(self):
        assert len({ListValue([1]), ListValue([1])}) == 1


class TestHelpers:
    def test_is_collection(self):
        assert is_collection(SetValue())
        assert is_collection(BagValue())
        assert is_collection(ListValue())
        assert not is_collection(Record())
        assert not is_collection([1, 2])

    def test_ensure_hashable(self):
        assert ensure_hashable(Record(a=1)) == Record(a=1)
        with pytest.raises(TypeError):
            ensure_hashable([1, 2])
