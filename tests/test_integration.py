"""Integration tests: the correctness triangle over the whole query corpus.

For every corpus query, five strategies must agree:

1. direct calculus evaluation of the raw translation (ground truth — the
   naive nested-loop semantics);
2. calculus evaluation of the *normalized* term (normalization is
   meaning-preserving);
3. the logical algebra evaluator on the unnested plan (the unnesting
   algorithm is sound);
4. the physical engine with hash joins;
5. the physical engine restricted to nested loops, with the full optimizer
   pipeline (simplification, algebraic rewrites, join reordering) applied.

This is the executable form of the paper's Theorem 2.
"""

from __future__ import annotations

import pytest

from corpus import CORPUS
from repro.algebra.evaluator import evaluate_plan
from repro.calculus.evaluator import evaluate
from repro.core.normalization import prepare
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.core.unnesting import unnest_query
from repro.oql.translator import parse_and_translate


@pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
def test_all_strategies_agree(query, databases):
    db = databases[query.family]
    term = parse_and_translate(query.oql, db.schema)

    reference = evaluate(term, db)

    normalized = prepare(term)
    assert evaluate(normalized, db) == reference, "normalization changed semantics"

    plan = unnest_query(term)
    assert evaluate_plan(plan, db) == reference, "unnesting changed semantics"

    optimizer = Optimizer(db)
    compiled = optimizer.compile_oql(query.oql)
    assert compiled.execute(db) == reference, "optimized physical plan disagrees"

    nl_optimizer = Optimizer(db, OptimizerOptions(hash_joins=False))
    assert nl_optimizer.run_oql(query.oql) == reference, (
        "nested-loop physical plan disagrees"
    )


@pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
def test_optimizer_options_all_combinations(query, databases):
    """Every combination of phase switches must preserve the result."""
    db = databases[query.family]
    reference = Optimizer(db, OptimizerOptions(unnest=False)).run_oql(query.oql)
    for simplify_on in (False, True):
        for algebraic in (False, True):
            for reorder in (False, True):
                options = OptimizerOptions(
                    simplify=simplify_on,
                    algebraic=algebraic,
                    reorder_joins=reorder,
                )
                got = Optimizer(db, options).run_oql(query.oql)
                assert got == reference, f"options {options} changed the result"


@pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
def test_unnested_plans_contain_no_comprehensions_in_structure(query, databases):
    """Completeness (Theorem 1): no comprehension survives as an operator's
    generator source — nesting only remains inside scalar expressions when
    it is *not* query nesting (and our translator leaves none at all)."""
    from repro.algebra.operators import operators
    from repro.calculus.terms import Comprehension, subterms

    db = databases[query.family]
    term = parse_and_translate(query.oql, db.schema)
    plan = unnest_query(term)
    for op in operators(plan):
        for attr in ("pred", "head", "path", "expr"):
            value = getattr(op, attr, None)
            if value is None:
                continue
            assert not any(
                isinstance(t, Comprehension) for t in subterms(value)
            ), f"comprehension survived in {type(op).__name__}.{attr}"


@pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
def test_plan_types_agree_with_term_types(query, databases):
    """The unnested plan has the same type as the calculus term (Fig. 3 vs 6)."""
    from repro.algebra.typing import infer_plan_type
    from repro.calculus.typing import infer_type
    from repro.data.schema import unify

    db = databases[query.family]
    term = parse_and_translate(query.oql, db.schema)
    term_type = infer_type(term, db.schema)
    plan_type = infer_plan_type(unnest_query(term), db.schema)
    # unify raises if the two types are incompatible.
    unify(term_type, plan_type)


def test_results_are_nontrivial(databases):
    """Guard against a silently-empty corpus: the flagship queries must
    produce non-empty results on the session databases."""
    flagship = ["query_a", "query_b", "query_d", "query_e", "group_avg", "hotels"]
    from corpus import corpus_by_name

    for name in flagship:
        query = corpus_by_name(name)
        db = databases[query.family]
        result = Optimizer(db).run_oql(query.oql)
        assert result is not None
        if hasattr(result, "__len__"):
            assert len(result) > 0, f"{name} returned an empty result"
