"""Parallel partitioned execution (repro.engine.exchange).

Covers the exchange layer end to end: partition coverage and determinism
of the partitioned scans, seed-independent hashing, parallel-vs-serial
agreement across strategies and modes, the shared governor under real
thread contention, cancellation draining the worker pool, and EXPLAIN
surfacing the partition/worker shape.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryPipeline
from repro.data.database import Database
from repro.data.datagen import company_database, university_database
from repro.data.values import Record, SetValue
from repro.engine.exchange import (
    PGather,
    resolve_workers,
    stable_hash,
    try_parallel_plan,
)
from repro.engine.governor import BudgetExceeded, CancelToken, Governor
from repro.errors import QueryCancelled
from repro.testing.oracle import results_equal

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _pipelines(db, **kwargs):
    serial = QueryPipeline(db, OptimizerOptions())
    par = QueryPipeline(
        db, OptimizerOptions(parallel=True, num_workers=3, **kwargs)
    )
    return serial, par


def _gather(pipeline: QueryPipeline, db, oql: str) -> PGather:
    physical = pipeline.compile_oql(oql).physical(db, {})
    assert isinstance(physical, PGather), physical.explain()
    return physical


# ---------------------------------------------------------------------------
# Deterministic set-extent iteration (the PYTHONHASHSEED bugfix)
# ---------------------------------------------------------------------------


class TestSetIterationOrder:
    def test_set_value_iterates_in_insertion_order(self):
        values = ["m", "a", "z", "b", "q"]
        assert list(SetValue(values).elements()) == values

    def test_dedup_keeps_first_occurrence(self):
        assert list(SetValue([3, 1, 3, 2, 1]).elements()) == [3, 1, 2]

    def test_union_preserves_left_then_right_order(self):
        left = SetValue([1, 2])
        right = SetValue([4, 2, 3])
        assert list(left.union(right).elements()) == [1, 2, 4, 3]

    def test_iteration_order_is_hash_seed_independent(self):
        # The same scan printed under two different PYTHONHASHSEED values
        # must produce byte-identical output: extent order is insertion
        # order, never hash-table order.  (Bag results preserve scan
        # order, so any seed-dependence in the set extent would show.)
        script = (
            "from repro.data.database import Database\n"
            "from repro.data.values import Record\n"
            "from repro.core.pipeline import QueryPipeline\n"
            "db = Database()\n"
            "db.add_extent('E', [Record(name=n) for n in "
            "['zeta', 'alpha', 'mu', 'beta', 'kappa', 'omega']], kind='set')\n"
            "result = QueryPipeline(db).run_oql("
            "'select e.name from e in E')\n"
            "print(list(result.elements()))\n"
        )
        outputs = []
        for seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.path.join(_REPO, "src")
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert "zeta" in outputs[0]


# ---------------------------------------------------------------------------
# Seed-independent key hashing
# ---------------------------------------------------------------------------


class TestStableHash:
    def test_equal_numerics_hash_alike(self):
        # 2 == 2.0 == (True + True): equal join keys must co-locate.
        assert stable_hash(2) == stable_hash(2.0)
        assert stable_hash(1) == stable_hash(True)
        assert stable_hash(0) == stable_hash(False)

    def test_distinct_values_spread(self):
        hashes = {stable_hash(i) for i in range(100)}
        assert len(hashes) == 100

    def test_identity_free_records_hash_by_value(self):
        assert stable_hash(Record(a=1, b="x")) == stable_hash(
            Record(b="x", a=1.0)
        )

    def test_strings_and_numbers_do_not_collide(self):
        assert stable_hash("2") != stable_hash(2)


# ---------------------------------------------------------------------------
# Partitioned scans
# ---------------------------------------------------------------------------


class TestPartitioning:
    def test_range_partitions_cover_extent_disjointly(self):
        db = company_database(53, 7, seed=7)
        par = QueryPipeline(
            db, OptimizerOptions(parallel=True, num_workers=4)
        )
        gather = _gather(par, db, "select e.name from e in Employees")
        seen: list = []
        for root in gather._partition_roots:
            scan = root
            while scan.children():
                scan = scan.children()[0]
            # The scan variable is a gensym (its counter is global, so the
            # exact name depends on what compiled earlier) — read it back.
            seen.extend(env[scan.var] for env in scan.rows())
        serial = list(db.extent("Employees").elements())
        assert seen == serial  # partition-order concat == extent order

    def test_auto_worker_count_is_positive_and_capped(self):
        assert 1 <= resolve_workers(0) <= 8
        assert resolve_workers(5) == 5


# ---------------------------------------------------------------------------
# Parallel-vs-serial agreement
# ---------------------------------------------------------------------------

AGREEMENT_QUERIES = (
    # reduce/range: float sum must be bit-identical (element replay).
    "sum( select e.salary / 3.0 from e in Employees )",
    # reduce over a collection.
    "select distinct e.name from e in Employees where e.salary > 1000",
    # nest, hash-aligned: group by the driving scan variable.
    "select struct(d: d.dno, es: (select e.name from e in Employees "
    "where e.dno = d.dno)) from d in Departments",
    # avg: non-reorder-safe monoid forced onto the exact range path.
    "avg( select e.salary from e in Employees )",
)


class TestAgreement:
    @pytest.mark.parametrize("oql", AGREEMENT_QUERIES)
    def test_parallel_matches_serial(self, oql):
        db = company_database(61, 9, seed=1998)
        serial, par = _pipelines(db)
        assert results_equal(serial.run_oql(oql), par.run_oql(oql))

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_worker_count_does_not_change_results(self, workers):
        db = university_database(40, 12, seed=1998)
        oql = (
            "select struct(s: s.name, a: s.age) "
            "from s in Student where s.age > 20"
        )
        serial = QueryPipeline(db).run_oql(oql)
        par = QueryPipeline(
            db, OptimizerOptions(parallel=True, num_workers=workers)
        ).run_oql(oql)
        assert results_equal(serial, par)

    def test_float_sum_is_bit_identical(self):
        # Not just approximately equal: the coordinator replays the exact
        # serial fold, so no reassociation error is tolerated.
        db = company_database(97, 11, seed=23)
        oql = "sum( select e.salary * 1.0000001 from e in Employees )"
        serial, par = _pipelines(db)
        assert serial.run_oql(oql) == par.run_oql(oql)

    def test_quantifiers_fall_back_to_serial(self):
        db = company_database(30, 5, seed=1998)
        _, par = _pipelines(db)
        physical = par.compile_oql(
            "exists e in Employees: e.salary > 0"
        ).physical(db, {})
        assert not isinstance(physical, PGather)

    def test_explain_surfaces_partitions_and_workers(self):
        db = company_database(30, 5, seed=1998)
        _, par = _pipelines(db)
        gather = _gather(par, db, "select distinct e.name from e in Employees")
        text = gather.explain()
        assert "partitions=3" in text and "workers=3" in text
        assert "PartitionScan" in text

    def test_explain_analyze_reports_gather(self):
        db = company_database(30, 5, seed=1998)
        _, par = _pipelines(db)
        stats = par.run_oql_stats("select distinct e.name from e in Employees")
        assert "Gather(" in stats.report()
        assert "workers=3" in stats.report()


# ---------------------------------------------------------------------------
# The shared governor under contention
# ---------------------------------------------------------------------------


class TestSharedGovernor:
    def test_no_lost_ticks_and_exactly_one_trip(self):
        # 8 workers push exactly the budget through shared local counters:
        # no trip may fire and no unit may be lost.  The next settled unit
        # must trip exactly once across all workers.
        governor = Governor(max_rows=8000, tick_interval=64)
        governor.enable_sharing()
        errors: list = []

        def work():
            try:
                for _ in range(100):  # 100 settles × 10 units
                    governor.tick_many(10)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert governor.ticks == 8000

        trips: list = []

        def over():
            try:
                governor.tick_many(1)
            except BudgetExceeded as exc:
                trips.append(exc)

        over_threads = [threading.Thread(target=over) for _ in range(4)]
        for t in over_threads:
            t.start()
        for t in over_threads:
            t.join()
        # The first settle past the budget trips; later settles re-trip by
        # design (the budget stays exceeded), so *at least* the first
        # raises and none are lost: 8000 + 4 units all accounted.
        assert len(trips) >= 1
        assert governor.ticks == 8004

    def test_sharing_is_idempotent(self):
        governor = Governor(max_rows=10)
        assert not governor.shared
        governor.enable_sharing()
        lock = governor._lock
        governor.enable_sharing()
        assert governor._lock is lock
        assert governor.shared

    def test_budget_trips_identically_serial_and_parallel(self):
        # Work totals are deterministic, so trip-vs-ok must not depend on
        # the execution mode for range-partitioned single-scan plans.
        db = company_database(60, 8, seed=1998)
        oql = "select distinct e.name from e in Employees"
        for budget in (5, 50, 100000):
            outcomes = []
            for options in (
                OptimizerOptions(max_rows=budget),
                OptimizerOptions(max_rows=budget, parallel=True, num_workers=3),
            ):
                try:
                    QueryPipeline(db, options).run_oql(oql)
                    outcomes.append("ok")
                except BudgetExceeded:
                    outcomes.append("tripped")
            assert outcomes[0] == outcomes[1], (budget, outcomes)


# ---------------------------------------------------------------------------
# Cancellation drains the pool
# ---------------------------------------------------------------------------


class TestCancellation:
    def test_cancel_mid_query_raises_and_drains_workers(self):
        db = company_database(400, 16, seed=1998)
        par = QueryPipeline(
            db, OptimizerOptions(parallel=True, num_workers=4)
        )
        oql = (
            "select struct(a: e.name, b: f.name) from e in Employees, "
            "f in Employees where e.salary > f.salary"
        )
        baseline = threading.active_count()
        token = CancelToken()
        timer = threading.Timer(0.005, token.cancel)
        timer.start()
        try:
            with pytest.raises(QueryCancelled):
                compiled = par.compile_oql(oql)
                compiled.execute(db, cancel_token=token)
        finally:
            timer.cancel()
        # PGather's pool context manager joins every worker before the
        # error propagates: no stray exchange threads may survive.
        deadline = time.monotonic() + 5.0
        while threading.active_count() > baseline:
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail(
                    f"worker threads leaked: {threading.active_count()} "
                    f"alive, baseline {baseline}"
                )
            time.sleep(0.01)

    def test_pre_cancelled_token_still_structured(self):
        db = company_database(50, 8, seed=1998)
        par = QueryPipeline(
            db, OptimizerOptions(parallel=True, num_workers=3)
        )
        token = CancelToken()
        token.cancel()
        with pytest.raises(QueryCancelled):
            par.compile_oql(
                "select distinct e.name from e in Employees"
            ).execute(db, cancel_token=token)


# ---------------------------------------------------------------------------
# Decomposition coverage
# ---------------------------------------------------------------------------


class TestDecomposition:
    def test_seed_rooted_plans_stay_serial(self):
        db = Database()
        db.add_extent("E", [Record(v=1)], kind="set")
        pipeline = QueryPipeline(
            db, OptimizerOptions(parallel=True, num_workers=2)
        )
        # A constant query has no driving extent scan to partition.
        physical = pipeline.compile_oql("1 + 2").physical(db, {})
        assert not isinstance(physical, PGather)

    def test_join_query_partitions_on_hash_keys(self):
        db = company_database(60, 8, seed=1998)
        _, par = _pipelines(db)
        gather = _gather(
            par,
            db,
            "select struct(d: d.dno, es: (select e.name from e in Employees "
            "where e.dno = d.dno)) from d in Departments",
        )
        assert gather.strategy == "nest"
        assert gather.mode == "hash"
        assert gather.aligned
        text = gather.explain()
        # Both sides of the equi-join are hash-partitioned on the key:
        # the join builds 1/P of its build side per worker.
        assert text.count("[hash") >= 2

    def test_try_parallel_plan_returns_none_for_quantifiers(self):
        db = company_database(20, 4, seed=1998)
        pipeline = QueryPipeline(db)
        compiled = pipeline.compile_oql("for all e in Employees: e.salary > 0")
        assert compiled.optimized is not None
        options = OptimizerOptions(parallel=True, num_workers=2)
        from repro.core.pipeline import _planner_options

        assert (
            try_parallel_plan(
                compiled.optimized, db, _planner_options(options)
            )
            is None
        )
