"""Unit and property tests for the monoid algebra (repro.calculus.monoids).

The monoid laws (associativity, identity, and the declared commutativity /
idempotence flags) are the soundness bedrock of the whole system — they are
checked here with hypothesis over randomly generated carrier values.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.calculus.monoids import (
    ALL,
    AVG,
    BAG,
    LIST,
    MAX,
    MIN,
    MONOIDS,
    PROD,
    SET,
    SOME,
    SUM,
    leq,
    monoid,
)
from repro.data.values import NULL, BagValue, ListValue, SetValue, is_null

ints = st.integers(min_value=-50, max_value=50)
positive = st.integers(min_value=0, max_value=50)
bools = st.booleans()

_CARRIERS = {
    "sum": ints,
    "prod": st.integers(min_value=-4, max_value=4),
    "max": positive,
    "min": ints,
    "all": bools,
    "some": bools,
    "set": st.frozensets(ints, max_size=5).map(SetValue),
    "bag": st.lists(ints, max_size=5).map(BagValue),
    "list": st.lists(ints, max_size=5).map(ListValue),
    "avg": st.tuples(ints.map(float), st.integers(min_value=0, max_value=9)),
}


def carrier(name: str):
    return _CARRIERS[name]


@pytest.mark.parametrize("name", sorted(MONOIDS))
def test_monoid_laws(name):
    m = MONOIDS[name]
    strategy = carrier(name)

    @given(strategy, strategy, strategy)
    def check(a, b, c):
        # identity
        assert m.merge(m.zero, a) == a
        assert m.merge(a, m.zero) == a
        # associativity
        assert m.merge(m.merge(a, b), c) == m.merge(a, m.merge(b, c))
        if m.commutative:
            assert m.merge(a, b) == m.merge(b, a)
        if m.idempotent:
            assert m.merge(a, a) == a

    check()


def test_registry_contents():
    assert set(MONOIDS) == {
        "set", "bag", "list", "sum", "prod", "max", "min", "all", "some", "avg",
    }


def test_lookup_unknown_monoid():
    with pytest.raises(KeyError, match="unknown monoid"):
        monoid("median")


def test_collection_flags():
    assert SET.is_collection and BAG.is_collection and LIST.is_collection
    assert not SUM.is_collection and not ALL.is_collection


def test_idempotence_flags():
    assert SET.idempotent and ALL.idempotent and SOME.idempotent
    assert MAX.idempotent and MIN.idempotent
    assert not BAG.idempotent and not LIST.idempotent
    assert not SUM.idempotent and not PROD.idempotent


def test_commutativity_flags():
    assert all(MONOIDS[n].commutative for n in MONOIDS if n != "list")
    assert not LIST.commutative


def test_units():
    assert SET.unit(3) == SetValue([3])
    assert BAG.unit(3) == BagValue([3])
    assert LIST.unit(3) == ListValue([3])


def test_fold():
    assert SUM.fold([1, 2, 3]) == 6
    assert ALL.fold([True, True]) is True
    assert ALL.fold([True, False]) is False
    assert SOME.fold([]) is False
    assert SET.fold_elements([1, 1, 2]) == SetValue([1, 2])
    assert BAG.fold_elements([1, 1]) == BagValue([1, 1])


def test_zeros():
    assert SUM.zero == 0
    assert PROD.zero == 1
    assert MAX.zero == 0  # the paper's (max, 0) monoid
    assert MIN.zero == float("inf")
    assert ALL.zero is True
    assert SOME.zero is False
    assert SET.zero == SetValue()


class TestAvg:
    def test_lift_and_merge(self):
        carrier_value = AVG.merge(AVG.lift(10.0), AVG.lift(20.0))
        assert carrier_value == (30.0, 2)

    def test_finalize(self):
        assert AVG.finalize((30.0, 2)) == 15.0

    def test_finalize_empty_is_null(self):
        assert is_null(AVG.finalize(AVG.zero))

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e6, max_value=1e6), min_size=1))
    def test_avg_matches_python_mean(self, values):
        merged = AVG.fold(AVG.lift(v) for v in values)
        assert AVG.finalize(merged) == pytest.approx(sum(values) / len(values))


class TestLeq:
    def test_commutative_into_list_rejected(self):
        assert not leq(SET, LIST)
        assert not leq(BAG, LIST)

    def test_list_into_anything(self):
        assert leq(LIST, SET)
        assert leq(LIST, BAG)
        assert leq(LIST, LIST)

    def test_set_into_primitives(self):
        # Allowed: rule D7's duplicate-elimination guard covers this case.
        assert leq(SET, SUM)
        assert leq(SET, ALL)

    def test_bag_into_set(self):
        assert leq(BAG, SET)
