"""Figure 5, executed: each algebra operator must agree with its own
defining calculus equation (O1–O7).

For every operator we build (a) the operator's output via the plan
evaluator and (b) the paper's defining comprehension evaluated by the
reference calculus evaluator over the *materialized* input streams, and
compare the two as sets of reified environment-records.  Hypothesis
supplies random inputs and predicates.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.evaluator import PlanEvaluator
from repro.algebra.operators import (
    Join,
    Nest,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Select,
    Unnest,
)
from repro.algebra.semantics import (
    evaluate_definition,
    join_semantics,
    materialize,
    nest_semantics,
    outer_join_semantics,
    outer_unnest_semantics,
    reduce_semantics,
    select_semantics,
    unnest_semantics,
)
from repro.calculus.terms import BinOp, Const, conj, const, path
from repro.data.database import Database
from repro.data.values import Record, SetValue

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def databases(draw):
    db = Database()
    db.add_extent(
        "R",
        [
            Record(
                i=i,
                a=draw(st.integers(0, 3)),
                kids=SetValue(
                    Record(age=draw(st.integers(0, 5)))
                    for _ in range(draw(st.integers(0, 3)))
                ),
            )
            for i in range(draw(st.integers(0, 5)))
        ],
    )
    db.add_extent(
        "S",
        [
            Record(j=j, c=draw(st.integers(0, 3)))
            for j in range(draw(st.integers(0, 5)))
        ],
    )
    return db


@st.composite
def r_predicates(draw):
    op = draw(st.sampled_from(["==", "<", ">=", "!="]))
    return BinOp(op, path("r", "a"), const(draw(st.integers(0, 3))))


@st.composite
def join_predicates(draw):
    op = draw(st.sampled_from(["==", "<", ">"]))
    parts = [BinOp(op, path("r", "a"), path("s", "c"))]
    if draw(st.booleans()):
        parts.append(BinOp(">=", path("s", "c"), const(draw(st.integers(0, 3)))))
    return conj(*parts)


def operator_output(plan, db) -> SetValue:
    return materialize(PlanEvaluator(db).stream(plan))


@_SETTINGS
@given(db=databases(), p=r_predicates())
def test_o2_select(db, p):
    plan = Select(Scan("R", "r"), p)
    defining = select_semantics(("r",), p)
    expected = evaluate_definition(defining, db, materialize(
        PlanEvaluator(db).stream(Scan("R", "r"))
    ))
    assert operator_output(plan, db) == expected


@_SETTINGS
@given(db=databases(), p=join_predicates())
def test_o1_join(db, p):
    plan = Join(Scan("R", "r"), Scan("S", "s"), p)
    X = materialize(PlanEvaluator(db).stream(Scan("R", "r")))
    Y = SetValue(db.extent("S"))
    defining = join_semantics(("r",), "s", p)
    assert operator_output(plan, db) == evaluate_definition(defining, db, X, Y)


@_SETTINGS
@given(db=databases(), p=join_predicates())
def test_o5_outer_join(db, p):
    plan = OuterJoin(Scan("R", "r"), Scan("S", "s"), p)
    X = materialize(PlanEvaluator(db).stream(Scan("R", "r")))
    Y = SetValue(db.extent("S"))
    defining = outer_join_semantics(("r",), "s", p)
    assert operator_output(plan, db) == evaluate_definition(defining, db, X, Y)


@_SETTINGS
@given(db=databases())
def test_o3_unnest(db):
    pred = BinOp(">=", path("k", "age"), const(2))
    plan = Unnest(Scan("R", "r"), path("r", "kids"), "k", pred)
    X = materialize(PlanEvaluator(db).stream(Scan("R", "r")))
    defining = unnest_semantics(("r",), path("r", "kids"), "k", pred)
    assert operator_output(plan, db) == evaluate_definition(defining, db, X)


@_SETTINGS
@given(db=databases())
def test_o6_outer_unnest(db):
    pred = BinOp(">=", path("k", "age"), const(2))
    plan = OuterUnnest(Scan("R", "r"), path("r", "kids"), "k", pred)
    X = materialize(PlanEvaluator(db).stream(Scan("R", "r")))
    defining = outer_unnest_semantics(("r",), path("r", "kids"), "k", pred)
    assert operator_output(plan, db) == evaluate_definition(defining, db, X)


@_SETTINGS
@given(db=databases(), p=r_predicates())
def test_o4_reduce(db, p):
    for monoid_name, head in [
        ("sum", path("r", "a")),
        ("max", path("r", "a")),
        ("set", path("r", "a")),
        ("all", BinOp(">", path("r", "a"), const(1))),
    ]:
        plan = Reduce(Scan("R", "r"), monoid_name, head, p)
        X = materialize(PlanEvaluator(db).stream(Scan("R", "r")))
        defining = reduce_semantics(("r",), monoid_name, head, p)
        assert PlanEvaluator(db).evaluate(plan) == evaluate_definition(
            defining, db, X
        )


@_SETTINGS
@given(db=databases(), p=join_predicates())
def test_o7_nest(db, p):
    """Nest over an outer-join: the standard splice shape."""
    join = OuterJoin(Scan("R", "r"), Scan("S", "s"), p)
    for monoid_name, head in [
        ("sum", path("s", "c")),
        ("set", path("s", "c")),
        ("all", BinOp(">", path("s", "c"), const(0))),
    ]:
        plan = Nest(join, monoid_name, head, ("r",), ("s",), "m", Const(True))
        X = materialize(PlanEvaluator(db).stream(join))
        defining = nest_semantics(
            ("r", "s"), monoid_name, head, ("r",), ("s",), "m", Const(True)
        )
        assert operator_output(plan, db) == evaluate_definition(defining, db, X)
