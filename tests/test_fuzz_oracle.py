"""Unit tests for the repro.testing subsystem itself: generator
determinism and validity, oracle judgement, result comparison, invariant
checkers, the shrinker, and repro-file round-tripping."""

from __future__ import annotations

import random

import pytest

from repro.data.database import Database
from repro.data.schema import INT, Schema
from repro.data.values import NULL, BagValue, Record, SetValue
from repro.oql.translator import parse_and_translate
from repro.testing.fuzz import FuzzConfig, generate_sample, run_fuzz
from repro.testing.invariants import (
    InvariantViolation,
    check_invariants,
    check_normal_form,
    check_plan_well_formed,
)
from repro.testing.oracle import (
    PATHS,
    check_sample,
    results_equal,
    run_all_paths,
)
from repro.testing.qgen import QueryGenerator
from repro.testing.repro_io import decode_sample, encode_sample
from repro.testing.schemagen import SchemaGenConfig, random_database
from repro.testing.shrink import rebuild_database, shrink


class TestGenerators:
    def test_database_generation_is_deterministic(self):
        db1, gen1 = random_database(11)
        db2, gen2 = random_database(11)
        assert db1.extent_names() == db2.extent_names()
        for name in db1.extent_names():
            assert db1.extent(name) == db2.extent(name)
            assert db1.indexed_attributes(name) == db2.indexed_attributes(name)
        assert gen1.extent_kinds == gen2.extent_kinds

    def test_query_generation_is_deterministic(self):
        _, generated = random_database(5)
        queries1 = [QueryGenerator(generated, random.Random(9)).query() for _ in range(3)]
        queries2 = [QueryGenerator(generated, random.Random(9)).query() for _ in range(3)]
        assert [q.source for q in queries1] == [q.source for q in queries2]
        assert [q.params for q in queries1] == [q.params for q in queries2]

    def test_sample_generation_is_deterministic(self):
        config = FuzzConfig(seed=4)
        first = generate_sample(config, 17)
        second = generate_sample(config, 17)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_generated_queries_parse_and_translate(self):
        for seed in range(10):
            db, generated = random_database(seed)
            gen = QueryGenerator(generated, random.Random(seed + 100))
            for _ in range(5):
                query = gen.query()
                parse_and_translate(query.source, db.schema)  # must not raise

    def test_every_object_has_a_unique_engine_oid(self):
        # Stored objects get engine-assigned identities (Database.adopt);
        # generated schemas no longer carry a synthetic oid attribute.
        db, _ = random_database(23)
        oids = []
        for name in db.extent_names():
            for obj in db.extent(name).elements():
                assert "oid" not in obj
                oids.append(obj.oid)
                for value in obj.values():
                    if hasattr(value, "elements"):
                        oids.extend(kid.oid for kid in value.elements())
        assert None not in oids
        assert len(oids) == len(set(oids))

    def test_synthetic_oid_attributes_behind_backcompat_flag(self):
        db, _ = random_database(23, SchemaGenConfig(synthetic_oids=True))
        attr_oids = []
        for name in db.extent_names():
            for obj in db.extent(name).elements():
                attr_oids.append(obj["oid"])
                for value in obj.values():
                    if hasattr(value, "elements"):
                        attr_oids.extend(kid["oid"] for kid in value.elements())
        assert len(attr_oids) == len(set(attr_oids))

    def test_generator_emits_value_equal_duplicates_in_bags(self):
        # With duplicates enabled (the default), some seed produces a bag
        # extent holding two identity-distinct but value-equal objects.
        for seed in range(40):
            db, generated = random_database(
                seed, SchemaGenConfig(duplicate_probability=0.5)
            )
            for name, kind in generated.extent_kinds.items():
                if kind != "bag":
                    continue
                objs = list(db.extent(name).elements())
                values = {}
                for obj in objs:
                    values.setdefault(obj, []).append(obj.oid)
                if any(len(oids) > 1 for oids in values.values()):
                    dupes = [o for o in values.values() if len(o) > 1]
                    assert all(len(set(o)) == len(o) for o in dupes)
                    return
        raise AssertionError("no seed produced duplicate objects in a bag")

    def test_params_only_contain_referenced_names(self):
        _, generated = random_database(3)
        gen = QueryGenerator(generated, random.Random(42))
        for _ in range(20):
            query = gen.query()
            for name in query.params:
                assert f":{name}" in query.source


class TestResultsEqual:
    def test_numeric_tower(self):
        assert results_equal(2, 2.0)
        assert results_equal(0.1 + 0.2, 0.30000000000000004)
        assert not results_equal(2, 3)

    def test_collections_modulo_order(self):
        assert results_equal(SetValue([1, 2]), SetValue([2, 1]))
        assert results_equal(BagValue([1, 1, 2]), BagValue([2, 1, 1]))
        assert not results_equal(BagValue([1, 1]), BagValue([1]))
        assert not results_equal(SetValue([1]), BagValue([1]))

    def test_null_and_records(self):
        assert results_equal(NULL, NULL)
        assert not results_equal(NULL, 0)
        assert results_equal(Record(a=1.0), Record(a=1))


class TestOracle:
    def test_path_roster_is_complete(self):
        names = [name for name, _ in PATHS]
        assert names[0] == "calculus-raw"  # the reference semantics
        assert "algebra-logical" in names
        assert "pipeline-cached" in names
        assert "param-roundtrip" in names
        assert len(names) == len(set(names))
        assert len(names) >= 10

    def test_simple_query_agrees(self):
        db, _ = random_database(1)
        extent = db.extent_names()[0]
        verdict = check_sample(f"select v from v in {extent}", {}, db)
        assert verdict.agreed
        assert all(outcome.ok for outcome in verdict.outcomes)

    def test_all_paths_run(self):
        db, _ = random_database(1)
        extent = db.extent_names()[0]
        outcomes = run_all_paths(f"count( select v from v in {extent} )", {}, db)
        assert len(outcomes) == len(PATHS)

    def test_unparseable_query_agrees_on_error(self):
        db, _ = random_database(1)
        verdict = check_sample("select from nothing at all", {}, db)
        assert verdict.agreed
        assert not verdict.reference.ok

    def test_fixed_seed_run_is_green(self):
        report = run_fuzz(FuzzConfig(seed=2, iterations=40))
        assert report.ok, report.summary()
        assert report.iterations == 40
        assert report.agreed_ok + report.agreed_error == 40


class TestInvariants:
    def test_clean_on_generated_samples(self):
        config = FuzzConfig(seed=6)
        for iteration in range(10):
            source, params, db = generate_sample(config, iteration)
            assert check_invariants(source, params, db) == []

    def test_normal_form_rejects_let(self):
        from repro.calculus.terms import Const, Let, Var

        with pytest.raises(InvariantViolation, match="let"):
            check_normal_form(Let("x", Const(1), Var("x")))

    def test_plan_rejects_unbound_columns(self):
        from repro.algebra.operators import Reduce, Scan, Select
        from repro.calculus.terms import BinOp, const, path

        bad = Reduce(
            Select(Scan("X", "v"), BinOp("==", path("w", "k"), const(1))),
            "sum",
            const(1),
        )
        with pytest.raises(InvariantViolation, match="unbound"):
            check_plan_well_formed(bad)

    def test_plan_rejects_non_reduce_root(self):
        from repro.algebra.operators import Scan

        with pytest.raises(InvariantViolation, match="root"):
            check_plan_well_formed(Scan("X", "v"))


class TestShrinker:
    def _sample_db(self) -> Database:
        schema = Schema()
        schema.define_class("C0", oid=INT, k=INT)
        schema.define_extent("X", "C0")
        db = Database(schema)
        db.add_extent("X", [Record(oid=i, k=i % 3) for i in range(9)])
        db.create_index("X", "k")
        return db

    def test_shrinks_query_and_data(self):
        db = self._sample_db()
        # Interesting: the query still mentions the k = 1 comparison and
        # still returns at least one row on the default path.
        def interesting(source, params, candidate_db):
            if "v0.k = 1" not in source:
                return False
            try:
                from repro.core.pipeline import QueryPipeline

                result = QueryPipeline(candidate_db).run_oql(source, **params)
            except Exception:
                return False
            return hasattr(result, "elements") and len(result) > 0

        source = (
            "select distinct v0.oid from v0 in X "
            "where v0.k = 1 and (v0.oid >= 0 or v0.k < :q0)"
        )
        params = {"q0": 7}
        assert interesting(source, params, db)
        small_source, small_params, small_db = shrink(
            source, params, db, interesting
        )
        assert interesting(small_source, small_params, small_db)
        assert len(small_source) < len(source)
        assert small_params == {}  # the :q0 conjunct is droppable
        # ddmin gets the extent down to the single row that keeps the
        # result non-empty.
        assert len(small_db.extent("X")) == 1

    def test_rebuild_preserves_kinds_and_indexes(self):
        db = self._sample_db()
        contents = {"X": list(db.extent("X").elements())[:2]}
        rebuilt = rebuild_database(db, contents)
        assert len(rebuilt.extent("X")) == 2
        assert rebuilt.indexed_attributes("X") == ("k",)
        assert isinstance(rebuilt.extent("X"), type(db.extent("X")))

    def test_bag_duplicate_sample_no_longer_diverges(self):
        # The formerly pinned bag-duplicate divergence (padded with extra
        # objects).  The object-identity layer fixed it: the sample is no
        # longer "interesting" to the divergence hunter, and every path
        # agrees on it.
        from repro.data.schema import CollectionType, RecordType
        from repro.testing.shrink import default_interesting

        schema = Schema()
        schema.define_class(
            "C0", oid=INT, k=INT,
            kids=CollectionType("set", RecordType((("m", INT),))),
        )
        schema.define_class("C1", j=INT)
        schema.define_extent("X", "C0")
        schema.define_extent("Y", "C1")
        db = Database(schema)
        db.add_extent("X", [
            Record(oid=0, k=1, kids=SetValue([Record(m=5)])),
            Record(oid=1, k=2, kids=SetValue([])),
        ])
        db.add_extent("Y", [Record(j=1), Record(j=1), Record(j=7)], kind="bag")
        source = (
            "select struct( A: ( select v2.m from v2 in v0.kids, v3 in Y ) ) "
            "from v0 in X, v1 in Y"
        )
        assert not default_interesting(source, {}, db)
        verdict = check_sample(source, {}, db)
        assert verdict.agreed, verdict.describe()


class TestReproIO:
    def test_round_trip(self):
        db, _ = random_database(13)
        source = "select v from v in X0 where v.oid = :q0"
        params = {"q0": 3, "q1": NULL}
        encoded = encode_sample(source, params, db, description="round trip")
        decoded_source, decoded_params, decoded_db = decode_sample(encoded)
        assert decoded_source == source
        assert decoded_params == params
        assert decoded_db.extent_names() == db.extent_names()
        for name in db.extent_names():
            assert decoded_db.extent(name) == db.extent(name)
            assert decoded_db.indexed_attributes(name) == db.indexed_attributes(name)

    def test_encoding_is_json_safe(self):
        import json

        db, _ = random_database(13)
        payload = encode_sample("select v from v in X0", {}, db)
        json.dumps(payload)  # must not raise
