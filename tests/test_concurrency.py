"""Pinned regression tests for the concurrency bugs the serving layer
exposed (ISSUE 10 satellites).

Three bug classes, each with the test that would have caught it:

1. the file-backed :class:`ShreddedStore` shared one ``sqlite3``
   connection across threads — interleaved cursors and progress handlers
   corrupted each other's fetches and governor accounting.  Now every
   thread gets its own WAL-mode connection (``test_file_backed_store_*``);
2. plan-cache hit/miss accounting read-modify-wrote counters outside the
   cache lock (the delta-probe pattern in ``run_oql_stats``), losing
   updates under a thread pool.  Counters now only move inside
   ``PlanCache``'s lock and callers read them through ``stats()``
   (``test_plan_cache_*``);
3. cancellation had to be strictly per-query: cancelling one token must
   never trip another in-flight query, even on the same database
   (``test_cancellation_*``; the end-to-end variant lives in
   test_serving.py).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from corpus import CORPUS
from repro.backends.shred import shredded_store
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.core.pipeline import QueryPipeline
from repro.engine.governor import CancelToken
from repro.errors import QueryCancelled

THREADS = 8


# ---------------------------------------------------------------------------
# 1. file-backed store under concurrent readers
# ---------------------------------------------------------------------------


class TestFileBackedStoreThreading:
    @pytest.mark.parametrize("family", ["company", "university"])
    def test_corpus_from_eight_threads_one_store(
        self, family, databases, tmp_path
    ):
        """The full corpus slice, executed from 8 threads through ONE
        file-backed pipeline, must agree with single-threaded in-memory
        execution on every query."""
        db = databases[family]
        queries = [q for q in CORPUS if q.family == family]
        references = {q.name: Optimizer(db).run_oql(q.oql) for q in queries}
        options = OptimizerOptions(
            backend="sqlite", db_path=str(tmp_path / f"{family}.db")
        )
        pipeline = QueryPipeline(db, options)
        failures: list[str] = []

        def run_slice(thread_index: int) -> None:
            for query in queries:
                try:
                    got = pipeline.run_oql(query.oql)
                except Exception as exc:  # noqa: BLE001 - collected
                    failures.append(
                        f"thread {thread_index} {query.name}: {exc!r}"
                    )
                    continue
                if got != references[query.name]:
                    failures.append(
                        f"thread {thread_index} {query.name}: wrong result"
                    )

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(run_slice, range(THREADS)))
        assert failures == []
        # The regression this pins: file-backed stores must NOT funnel all
        # threads through one connection.
        store = shredded_store(db, db_path=options.db_path)
        assert len(store._connections) > 1, (
            "file-backed store served 8 threads through a single connection"
        )

    def test_in_memory_store_keeps_one_shared_connection(self, company_db):
        """The other side of the policy: a ``:memory:`` database IS its
        connection (a second connection would see an empty database), so
        the in-memory store must keep exactly one, serialized by lock."""
        pipeline = QueryPipeline(company_db, OptimizerOptions(backend="sqlite"))
        reference = Optimizer(company_db).run_oql("count(Employees)")

        def run(_: int):
            return pipeline.run_oql("count(Employees)")

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            results = list(pool.map(run, range(THREADS)))
        assert all(r == reference for r in results)
        store = shredded_store(company_db)
        assert store._shared_connection is not None
        assert len(store._connections) == 1

    def test_store_factory_race_returns_one_store(self, travel_db, tmp_path):
        """Concurrent first calls to shredded_store() on the same database
        must converge on one store (the old check-then-create let every
        thread shred its own — and, file-backed, write the same file)."""
        path = str(tmp_path / "race.db")
        barrier = threading.Barrier(THREADS)

        def build(_: int):
            barrier.wait()
            return shredded_store(travel_db, db_path=path)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            stores = list(pool.map(build, range(THREADS)))
        assert len({id(store) for store in stores}) == 1


# ---------------------------------------------------------------------------
# 2. plan-cache counter integrity under a thread pool
# ---------------------------------------------------------------------------


class TestPlanCacheCounters:
    def test_exact_hit_and_miss_totals_under_stress(self, company_db):
        """Pre-warm K plans, then hammer the cache from 8 threads: every
        lookup must be counted exactly once.  Lost counter updates (the
        unlocked read-modify-write this pins) would make hits fall short
        of the known total."""
        sources = [
            f"select distinct e.name from e in Employees "
            f"where e.salary > {floor}"
            for floor in range(12)
        ]
        pipeline = QueryPipeline(company_db)
        for source in sources:  # K misses, zero hits
            compiled, from_cache = pipeline.compile_oql_cached(source)
            assert compiled is not None and from_cache is False
        rounds = 40

        def hammer(_: int) -> int:
            hits = 0
            for _round in range(rounds):
                for source in sources:
                    _, from_cache = pipeline.compile_oql_cached(source)
                    hits += from_cache
            return hits

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            per_thread = list(pool.map(hammer, range(THREADS)))
        hits, misses, entries = pipeline.plan_cache.stats()
        assert per_thread == [rounds * len(sources)] * THREADS
        assert misses == len(sources)
        assert hits == THREADS * rounds * len(sources)
        assert entries == len(sources)

    def test_run_oql_stats_flags_are_consistent(self, company_db):
        """Each execution's from-cache flag comes from its own lookup, not
        a counter delta: under 8 threads the flags must sum to exactly
        total-executions minus distinct-queries."""
        pipeline = QueryPipeline(company_db)
        source = "select e from e in Employees where e.age > 30"
        per_thread = 25

        def run(_: int) -> int:
            hits = 0
            for _i in range(per_thread):
                stats = pipeline.run_oql_stats(source)
                hits += stats.from_cache
            return hits

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            flags = list(pool.map(run, range(THREADS)))
        total = THREADS * per_thread
        # Exactly the first compile (or the rare concurrent first
        # compiles, each reporting a miss) are non-hits.
        misses_reported = total - sum(flags)
        hits, misses, _ = pipeline.plan_cache.stats()
        assert misses_reported == misses
        assert hits + misses == total
        assert 1 <= misses <= THREADS


# ---------------------------------------------------------------------------
# 3. cancellation isolation (in-process)
# ---------------------------------------------------------------------------


class TestCancellationIsolation:
    SLOW = (
        "count( select struct( a: e1.name, b: e2.name, c: e3.name, "
        "d: e4.name ) from e1 in Employees, e2 in Employees, "
        "e3 in Employees, e4 in Employees )"
    )

    def test_cancelling_one_token_spares_the_other(self, company_db):
        pipeline = QueryPipeline(company_db)
        slow = pipeline.compile_oql(self.SLOW)
        fast = pipeline.compile_oql("count(Employees)")
        reference = fast.execute(company_db)
        token_a = CancelToken()
        outcome: dict[str, object] = {}
        started = threading.Event()

        def doomed() -> None:
            started.set()
            try:
                outcome["value"] = slow.execute(
                    company_db, cancel_token=token_a
                )
            except QueryCancelled as exc:
                outcome["error"] = exc

        worker = threading.Thread(target=doomed)
        worker.start()
        started.wait(5)
        token_a.cancel()
        # While A is being torn down, B (its own token) runs unbothered.
        token_b = CancelToken()
        for _ in range(5):
            assert fast.execute(company_db, cancel_token=token_b) == reference
        worker.join(timeout=30)
        assert not worker.is_alive()
        assert "error" in outcome, "cancelled query ran to completion"
        assert not token_b.cancelled
