"""Unit tests for the command-line interface and ORDER BY execution."""

from __future__ import annotations

import io

import pytest

from repro.cli import DATABASES, build_parser, format_result, main, run_query
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.datagen import company_database
from repro.data.values import ListValue, Record, SetValue


class TestCliPlumbing:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["select e from e in Employees"])
        assert args.db == "company"
        assert not args.plan and not args.explain

    def test_all_demo_databases_build(self):
        for name, maker in DATABASES.items():
            db = maker()
            assert db.extent_names(), name

    def test_format_result_collection(self):
        text = format_result(SetValue([3, 1, 2]))
        assert "(3 rows)" in text

    def test_format_result_truncates(self):
        text = format_result(SetValue(range(100)), limit=5)
        assert "100 rows total" in text

    def test_format_result_scalar(self):
        assert format_result(42) == "  42"

    def test_format_result_empty(self):
        assert "(0 rows)" in format_result(SetValue())

    def test_record_collection_renders_as_table(self):
        result = SetValue([Record(a=1, b="x"), Record(a=22, b="yy")])
        text = format_result(result)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "|", "b"]
        assert "-+-" in lines[1]
        assert "(2 rows)" in text

    def test_heterogeneous_records_fall_back_to_repr(self):
        result = SetValue([Record(a=1), Record(b=2)])
        text = format_result(result)
        assert "<a=1>" in text

    def test_long_cells_truncated(self):
        result = SetValue([Record(t="x" * 100)])
        text = format_result(result)
        assert "…" in text

    def test_ordered_list_preserves_order(self):
        result = ListValue([Record(v=3), Record(v=1), Record(v=2)])
        text = format_result(result)
        body = [l for l in text.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert [b.strip() for b in body] == ["3", "1", "2"]


class TestRunQuery:
    def _capture(self, source, **kwargs):
        db = company_database(15, 4, seed=8)
        out = io.StringIO()
        run_query(source, db, out=out, **kwargs)
        return out.getvalue()

    def test_basic(self):
        text = self._capture("select distinct e.name from e in Employees")
        assert "(15 rows)" in text

    def test_show_everything(self):
        text = self._capture(
            "select distinct e.name from e in Employees where e.age > 30",
            show_plan=True,
            show_explain=True,
            show_trace=True,
            show_calculus=True,
        )
        assert "calculus:" in text
        assert "unnesting trace:" in text
        assert "(C1)" in text
        assert "plan:" in text
        assert "physical plan:" in text

    def test_compare_naive(self):
        text = self._capture(
            "select distinct e.name from e in Employees "
            "where e.salary > avg( select u.salary from u in Employees )",
            compare_naive=True,
        )
        assert "results agree" in text

    def test_no_unnest(self):
        text = self._capture(
            "select distinct e.name from e in Employees", unnest=False
        )
        assert "(15 rows)" in text


class TestMain:
    def test_main_success(self, capsys):
        code = main(["--db", "ab", "for all a in A: exists b in B: a = b"])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_main_reports_syntax_error(self, capsys):
        code = main(["selectt oops"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestOrderBy:
    @pytest.fixture(scope="class")
    def db(self):
        return company_database(20, 5, seed=12)

    def test_order_by_alias(self, db):
        result = Optimizer(db).run_oql(
            "select distinct e.name as n, e.salary as s from e in Employees "
            "order by s desc"
        )
        assert isinstance(result, ListValue)
        salaries = [row["s"] for row in result]
        assert salaries == sorted(salaries, reverse=True)

    def test_order_by_value_for_scalar_projection(self, db):
        result = Optimizer(db).run_oql(
            "select distinct e.age from e in Employees order by value"
        )
        ages = list(result)
        assert ages == sorted(ages)

    def test_secondary_key(self, db):
        result = Optimizer(db).run_oql(
            "select e.dno as d, e.name as n from Employees e order by d, n desc"
        )
        rows = [(r["d"], r["n"]) for r in result]
        assert rows == sorted(rows, key=lambda t: (t[0],))  # stable on d
        for (d1, n1), (d2, n2) in zip(rows, rows[1:]):
            if d1 == d2:
                assert n1 >= n2

    def test_order_by_with_naive_strategy(self, db):
        source = "select distinct e.age from e in Employees order by value desc"
        fast = Optimizer(db).run_oql(source)
        naive = Optimizer(db, OptimizerOptions(unnest=False)).run_oql(source)
        assert fast == naive
        assert isinstance(fast, ListValue)

    def test_order_by_in_subquery_rejected(self, db):
        from repro.oql.translator import TranslationError

        with pytest.raises(TranslationError, match="ORDER BY"):
            Optimizer(db).compile_oql(
                "select distinct struct(X: ( select e.name from e in Employees "
                "order by value )) from d in Departments"
            )

    def test_order_by_expression(self, db):
        result = Optimizer(db).run_oql(
            "select distinct e.salary as s from e in Employees "
            "order by 0 - s"
        )
        salaries = [row["s"] for row in result]
        assert salaries == sorted(salaries, reverse=True)
