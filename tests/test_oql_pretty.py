"""Round-trip tests for the OQL unparser: parse(unparse(parse(q))) == parse(q)."""

from __future__ import annotations

import pytest

from corpus import CORPUS
from repro.oql.parser import parse
from repro.oql.pretty import unparse


@pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
def test_corpus_round_trip(query):
    ast = parse(query.oql)
    rendered = unparse(ast)
    assert parse(rendered) == ast, f"round trip changed the AST:\n{rendered}"


@pytest.mark.parametrize(
    "source",
    [
        "select distinct e from e in Employees",
        "select e.a + 1 * 2 from e in X",
        "select (e.a + 1) * 2 from e in X",
        "select -e.a from e in X",
        "select e from e in X where not (a = 1 and b = 2)",
        "select e from e in X where a = 1 or b = 2 and c = 3",
        'select e from e in X where e.name = "Smith"',
        "select struct( A: 1, B: e.x ) from e in X",
        "select e from e in X where exists( select k from k in e.kids )",
        "select e from e in X where e.a in ( select y.a from y in Y )",
        "select e.dno, count(e) as n from X e group by e.dno having count(e) > 1",
        "select e.a as x from e in X order by x desc, value",
        "select f from f in flatten( select e.kids from e in X )",
        "select e from e in X where nil = e.a and true or false",
        "select e from e in X, c in e.kids where for all d in c.sub: d.v >= 0",
    ],
)
def test_handwritten_round_trip(source):
    ast = parse(source)
    assert parse(unparse(ast)) == ast


def test_unparse_output_is_stable():
    source = "select distinct e.name from e in Employees where e.age > 30"
    once = unparse(parse(source))
    twice = unparse(parse(once))
    assert once == twice
