"""Property test: the plan cache never serves a stale result.

A long-lived :class:`~repro.core.pipeline.QueryPipeline` caches compiled
plans keyed on (source, schema version, options, view epoch).  Hypothesis
drives arbitrary interleavings of schema-changing operations — replacing
extent contents, creating indexes, refreshing statistics, redefining a view
— with query executions, and after every step each query's result through
the long-lived (caching) pipeline must equal the result of a freshly built
pipeline that has never cached anything.

Any missing invalidation hook shows up here as a cached physical plan that
scans dropped rows, ignores a new index's NULL semantics, or inlines an old
view body.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import QueryPipeline
from repro.data.database import Database
from repro.data.values import NULL, Record

QUERIES = (
    ("select distinct e.k from e in E where e.v > 2", {}),
    ("select e.oid from e in E where e.k = :p", {"p": 1}),
    ("select struct( K: e.k, N: count( select f from f in E where f.k = e.k ) ) "
     "from e in E", {}),
    ("select x from x in V", {}),
)

VIEW_BODIES = tuple(
    f"define V as select e.oid from e in E where e.v >= {threshold}"
    for threshold in range(4)
)


def _row(oid: int) -> Record:
    return Record(
        oid=oid,
        k=oid % 3,
        v=NULL if oid % 5 == 4 else oid % 7,
    )


operations = st.lists(
    st.one_of(
        st.tuples(st.just("rows"), st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("index"), st.sampled_from(["k", "v"])),
        st.tuples(st.just("analyze"), st.just(0)),
        st.tuples(st.just("view"), st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("query"), st.integers(min_value=0, max_value=3)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(operations)
def test_interleaved_ddl_never_serves_stale_results(ops):
    db = Database()
    rows = [_row(i) for i in range(4)]
    db.add_extent("E", list(rows))
    pipeline = QueryPipeline(db)
    view_source = VIEW_BODIES[0]
    pipeline.define_view(view_source)

    def check_all_queries() -> None:
        for source, params in QUERIES:
            fresh = QueryPipeline(db)
            fresh.define_view(view_source)
            expected = fresh.run_oql(source, **params)
            actual = pipeline.run_oql(source, **params)
            assert actual == expected, (
                f"stale result for {source!r} after schema changes"
            )

    check_all_queries()  # populate the cache before any DDL
    for op, argument in ops:
        if op == "rows":
            rows.extend(_row(len(rows) + offset) for offset in range(argument))
            db.add_extent("E", list(rows))
        elif op == "index":
            db.create_index("E", argument)
        elif op == "analyze":
            db.analyze()
        elif op == "view":
            view_source = VIEW_BODIES[argument]
            pipeline.define_view(view_source)
        elif op == "query":
            source, params = QUERIES[argument]
            fresh = QueryPipeline(db)
            fresh.define_view(view_source)
            assert pipeline.run_oql(source, **params) == fresh.run_oql(
                source, **params
            )
        check_all_queries()


def test_unchanged_database_hits_the_cache():
    db = Database()
    db.add_extent("E", [_row(i) for i in range(4)])
    pipeline = QueryPipeline(db)
    source, params = QUERIES[0]
    pipeline.run_oql(source, **params)
    misses = pipeline.plan_cache.misses
    hits = pipeline.plan_cache.hits
    pipeline.run_oql(source, **params)
    assert pipeline.plan_cache.hits == hits + 1
    assert pipeline.plan_cache.misses == misses


def test_ddl_invalidates_then_recompiles():
    db = Database()
    rows = [_row(i) for i in range(4)]
    db.add_extent("E", list(rows))
    pipeline = QueryPipeline(db)
    source, params = QUERIES[0]
    pipeline.run_oql(source, **params)
    db.create_index("E", "k")
    misses = pipeline.plan_cache.misses
    pipeline.run_oql(source, **params)  # key changed: must recompile
    assert pipeline.plan_cache.misses == misses + 1
