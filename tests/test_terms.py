"""Unit tests for the calculus term language (repro.calculus.terms)."""

from __future__ import annotations

import pytest

from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Extent,
    Filter,
    Generator,
    If,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Proj,
    RecordCons,
    Singleton,
    Var,
    Zero,
    alpha_rename,
    bound_vars,
    comprehension,
    conj,
    conjuncts,
    const,
    free_vars,
    fresh_name,
    path,
    record,
    subterms,
    substitute,
    transform,
    var,
)


class TestConstruction:
    def test_record_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RecordCons((("a", Const(1)), ("a", Const(2))))

    def test_binop_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="unknown binary operator"):
            BinOp("**", Const(1), Const(2))

    def test_path_builder(self):
        term = path("e", "manager", "children")
        assert term == Proj(Proj(Var("e"), "manager"), "children")

    def test_comprehension_builder_mixed_qualifiers(self):
        comp = comprehension(
            "set", var("x"), ("x", Extent("X")), BinOp(">", var("x"), const(3))
        )
        assert comp.generators() == (Generator("x", Extent("X")),)
        assert comp.filters() == (Filter(BinOp(">", Var("x"), Const(3))),)

    def test_comprehension_builder_rejects_garbage(self):
        with pytest.raises(TypeError):
            comprehension("set", var("x"), 42)  # type: ignore[arg-type]

    def test_record_builder_sorts_fields(self):
        assert record(b=const(2), a=const(1)) == record(a=const(1), b=const(2))

    def test_structural_equality(self):
        a = comprehension("sum", const(1), ("x", Extent("X")))
        b = comprehension("sum", const(1), ("x", Extent("X")))
        assert a == b

    def test_field_expr(self):
        rec = record(a=const(1))
        assert rec.field_expr("a") == Const(1)
        with pytest.raises(KeyError):
            rec.field_expr("b")


class TestConjunction:
    def test_conj_empty_is_true(self):
        assert conj() == Const(True)

    def test_conj_drops_true(self):
        assert conj(Const(True), var("p")) == Var("p")

    def test_conjuncts_roundtrip(self):
        parts = [var("p"), var("q"), var("r")]
        assert conjuncts(conj(*parts)) == parts

    def test_conjuncts_of_true_is_empty(self):
        assert conjuncts(Const(True)) == []

    def test_conjuncts_flattens_nested_ands(self):
        nested = BinOp("and", BinOp("and", var("a"), var("b")), var("c"))
        assert conjuncts(nested) == [Var("a"), Var("b"), Var("c")]


class TestFreeVars:
    def test_var(self):
        assert free_vars(var("x")) == {"x"}

    def test_lambda_binds(self):
        assert free_vars(Lambda("x", BinOp("+", var("x"), var("y")))) == {"y"}

    def test_let_binds_body_only(self):
        term = Let("x", var("y"), BinOp("+", var("x"), var("z")))
        assert free_vars(term) == {"y", "z"}

    def test_generator_binds_later_qualifiers_and_head(self):
        comp = comprehension(
            "set",
            BinOp("+", var("x"), var("free")),
            ("x", Extent("X")),
            BinOp(">", var("x"), var("other")),
        )
        assert free_vars(comp) == {"free", "other"}

    def test_generator_domain_sees_earlier_vars_only(self):
        comp = comprehension(
            "set", var("y"), ("x", Extent("X")), ("y", path("x", "kids"))
        )
        assert free_vars(comp) == set()

    def test_extent_is_not_a_variable(self):
        assert free_vars(Extent("Employees")) == set()

    def test_bound_vars(self):
        comp = comprehension("set", Lambda("f", var("f")), ("x", Extent("X")))
        assert bound_vars(comp) == {"x", "f"}


class TestSubstitution:
    def test_simple(self):
        assert substitute(var("x"), {"x": const(1)}) == Const(1)

    def test_shadowed_by_lambda(self):
        term = Lambda("x", var("x"))
        assert substitute(term, {"x": const(1)}) == term

    def test_shadowed_by_generator(self):
        comp = comprehension("set", var("x"), ("x", Extent("X")))
        assert substitute(comp, {"x": const(1)}) == comp

    def test_domain_substituted_before_binding(self):
        comp = comprehension("set", var("x"), ("x", var("d")))
        result = substitute(comp, {"d": Extent("X")})
        assert result == comprehension("set", var("x"), ("x", Extent("X")))

    def test_capture_avoidance_lambda(self):
        # (λx. x + y)[y := x]  must NOT become λx. x + x
        term = Lambda("x", BinOp("+", var("x"), var("y")))
        result = substitute(term, {"y": var("x")})
        assert isinstance(result, Lambda)
        assert result.param != "x"
        assert result.body == BinOp("+", Var(result.param), Var("x"))

    def test_capture_avoidance_generator(self):
        # { x + y | x <- X }[y := x] must rename the generator variable.
        comp = comprehension("set", BinOp("+", var("x"), var("y")), ("x", Extent("X")))
        result = substitute(comp, {"y": var("x")})
        gen = result.generators()[0]
        assert gen.var != "x"
        assert result.head == BinOp("+", Var(gen.var), Var("x"))

    def test_let_shadowing(self):
        term = Let("x", var("y"), var("x"))
        result = substitute(term, {"x": const(9)})
        assert result == Let("x", Var("y"), Var("x"))

    def test_empty_mapping_is_identity(self):
        term = BinOp("+", var("a"), var("b"))
        assert substitute(term, {}) is term


class TestTraversal:
    def test_subterms_preorder(self):
        term = BinOp("+", var("a"), const(1))
        assert list(subterms(term)) == [term, Var("a"), Const(1)]

    def test_transform_bottom_up(self):
        term = BinOp("+", const(1), const(2))

        def fold(t):
            if isinstance(t, BinOp) and isinstance(t.left, Const) and isinstance(t.right, Const):
                return Const(t.left.value + t.right.value)
            return t

        assert transform(term, fold) == Const(3)

    def test_transform_rebuilds_all_node_kinds(self):
        term = If(
            Not(BinOp("==", var("a"), Null())),
            Merge("set", Singleton("set", var("a")), Zero("set")),
            Apply(Lambda("x", Proj(var("x"), "f")), record(f=const(1))),
        )
        # identity transform must reproduce an equal term
        assert transform(term, lambda t: t) == term

    def test_alpha_rename(self):
        comp = comprehension(
            "set", var("x"), ("x", Extent("X")), BinOp(">", var("x"), const(0))
        )
        renamed = alpha_rename(comp, "_1")
        gen = renamed.generators()[0]
        assert gen.var == "x_1"
        assert renamed.head == Var("x_1")
        assert renamed.filters()[0].pred == BinOp(">", Var("x_1"), Const(0))

    def test_fresh_names_are_unique(self):
        names = {fresh_name("v") for _ in range(100)}
        assert len(names) == 100


class TestStr:
    def test_str_uses_pretty(self):
        comp = comprehension("sum", const(1), ("x", Extent("X")))
        assert str(comp) == "+{ 1 | x <- X }"
