"""Tests for the generic rewrite engine across both node domains
(calculus terms via `terms.transform`, algebra plans via `transform_plan`),
and for the declarative normalization rule set."""

from __future__ import annotations

import pytest

from repro.calculus.terms import (
    Apply,
    BinOp,
    Const,
    Extent,
    Lambda,
    comprehension,
    const,
    transform,
    var,
)
from repro.core.normalization import NORMALIZATION_RULES, normalize
from repro.core.rewrite import Firing, RewriteEngine, Rule, RuleSet


class TestGenericEngine:
    def test_calculus_phase(self):
        phase = RuleSet("demo", transform=transform)

        @phase.rule("fold-add")
        def fold(term):
            if (
                isinstance(term, BinOp)
                and term.op == "+"
                and isinstance(term.left, Const)
                and isinstance(term.right, Const)
            ):
                return Const(term.left.value + term.right.value)
            return None

        engine = RewriteEngine()
        term = BinOp("+", BinOp("+", const(1), const(2)), const(3))
        assert engine.run_phase(phase, term) == Const(6)
        assert [f.rule for f in engine.firings] == ["fold-add", "fold-add"]

    def test_run_multiple_phases(self):
        first = RuleSet("first", transform=transform)
        second = RuleSet("second", transform=transform)

        @first.rule("one-to-two")
        def one_to_two(term):
            if term == Const(1):
                return Const(2)
            return None

        @second.rule("two-to-three")
        def two_to_three(term):
            if term == Const(2):
                return Const(3)
            return None

        engine = RewriteEngine()
        result = engine.run([first, second], BinOp("+", const(1), const(0)))
        assert result == BinOp("+", Const(3), Const(0))
        assert [str(f) for f in engine.firings] == [
            "first/one-to-two",
            "second/two-to-three",
        ]

    def test_firing_str(self):
        assert str(Firing("p", "r")) == "p/r"

    def test_rule_callable(self):
        rule = Rule("id", lambda n: None)
        assert rule(Const(1)) is None


class TestNormalizationRuleSet:
    def test_inventory_matches_the_paper(self):
        names = {rule.name for rule in NORMALIZATION_RULES.rules}
        # the nine N-rules (N1..N9 with D3/D4 as filter-const) plus the
        # engineering extras
        assert {
            "N1-beta",
            "N2-projection",
            "N3-conditional-domain",
            "N4-zero-domain",
            "N5-singleton-domain",
            "N6-merge-domain",
            "N7-flatten-domain",
            "N8-exists-filter",
            "N9-head-flatten",
            "filter-const",
        } <= names

    def test_firings_are_observable(self):
        engine = RewriteEngine()
        inner = comprehension("set", var("x"), ("x", Extent("X")))
        term = comprehension("set", var("v"), ("v", inner))
        engine.run_phase(NORMALIZATION_RULES, term)
        fired = {f.rule for f in engine.firings}
        assert "N7-flatten-domain" in fired
        assert "N5-singleton-domain" in fired

    def test_normalize_equals_engine_run(self):
        term = Apply(Lambda("x", BinOp("+", var("x"), const(1))), const(41))
        engine = RewriteEngine()
        assert normalize(term) == engine.run_phase(NORMALIZATION_RULES, term)
        assert normalize(term) == Const(42)

    def test_every_rule_has_description_or_name(self):
        for rule in NORMALIZATION_RULES.rules:
            assert rule.name
