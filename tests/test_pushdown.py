"""Tests for aggregation pushdown and the file-backed (out-of-core) store.

Four concerns, mirroring ISSUE 9's tentpole:

* **parity**: every pushable aggregate monoid (sum/count/avg/min/max,
  some/all) agrees with the reference evaluator across the divergence-prone
  axes — 3VL predicates, NULL aggregate inputs, NULL grouping keys, empty
  groups, and empty extents — with pushdown both on and off;
* **the pushdown actually fires**: golden checks that grouping/aggregate
  queries lower to a single ``GROUP BY`` statement and EXPLAIN carries the
  ``[sql:group]``/``[sql:agg]``/``[sql:merge]`` markers;
* **index-backed probes**: ``EXPLAIN QUERY PLAN`` goldens asserting that
  ``$parent`` unnests and equi-joins discovered at lowering time run off
  indexes (satellite: index coverage + ANALYZE);
* **out of core**: file-backed round-trip (shred → close → reopen → reuse),
  stale-manifest re-shred, plan-cache interaction on backend/db-path
  switches, and the governor tripping *inside* a SELECT via the progress
  handler.
"""

from __future__ import annotations

import io
import sqlite3

import pytest

from corpus import CORPUS
from repro.backends.shred import shredded_sql, shredded_store
from repro.cli import DATABASES
from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryPipeline
from repro.data.database import Database
from repro.data.schema import FLOAT, INT, STRING, Schema
from repro.data.values import NULL, Record
from repro.errors import BudgetExceeded
from repro.testing.oracle import results_equal


def _pipeline(db, **options):
    return QueryPipeline(db, OptimizerOptions(**options))


def _agg_db():
    """Rows exercising every divergence axis: NULL values, NULL keys,
    groups whose every contribution is filtered out, and an empty extent."""
    schema = Schema()
    schema.define_class("T", k=INT, v=INT, f=FLOAT, s=STRING)
    schema.define_extent("Ts", "T")
    schema.define_extent("Empty", "T")
    db = Database(schema)
    db.add_extent(
        "Ts",
        [
            Record(k=1, v=10, f=1.5, s="a"),
            Record(k=1, v=NULL, f=2.5, s="b"),
            Record(k=2, v=3, f=NULL, s="a"),
            Record(k=NULL, v=7, f=0.5, s=NULL),
            Record(k=2, v=5, f=4.0, s="c"),
            Record(k=3, v=NULL, f=NULL, s="d"),
        ],
    )
    db.add_extent("Empty", [])
    return db


# The sweep: every pushable monoid crossed with 3VL/NULL/empty shapes.
PARITY_QUERIES = [
    # --- root Reduce aggregates (whole extent, [sql:agg]) ---
    "sum( select t.v from t in Ts )",
    "sum( select t.f from t in Ts )",
    "count( select t from t in Ts )",
    "avg( select t.v from t in Ts )",
    "min( select t.v from t in Ts )",
    "max( select t.v from t in Ts )",
    # 3VL predicate: NULL comparisons drop rows on both engines.
    "sum( select t.v from t in Ts where t.f > 1.0 )",
    "count( select t from t in Ts where t.s = \"a\" )",
    "avg( select t.f from t in Ts where t.v > 4 )",
    "max( select t.v from t in Ts where t.f > 1.0 )",
    # Quantifiers (some/all via MAX/MIN over CASE).
    "exists t in Ts: t.v > 5",
    "exists t in Ts: t.v > 100",
    "for all t in Ts: t.v > 0",
    "for all t in Ts: t.k = 1",
    "exists t in Empty: t.v > 0",
    "for all t in Empty: t.v > 0",
    # Empty input: sum -> 0, count -> 0, avg -> NULL, min -> inf, max -> 0.
    "sum( select t.v from t in Empty )",
    "count( select t from t in Empty )",
    "avg( select t.v from t in Empty )",
    "min( select t.v from t in Empty )",
    "max( select t.v from t in Empty )",
    # Predicate filters everything out (same zeros, via WHERE).
    "sum( select t.v from t in Ts where t.v > 1000 )",
    "avg( select t.v from t in Ts where t.v > 1000 )",
    # --- Nest groupings ([sql:group]): NULL keys group under NULL ---
    "select distinct t.k, sum(t.v) as S from Ts t group by t.k",
    "select distinct t.k, count(t) as N from Ts t group by t.k",
    "select distinct t.k, avg(t.f) as A from Ts t group by t.k",
    "select distinct t.k, max(t.v) as M from Ts t group by t.k",
    "select distinct t.s, sum(t.v) as S from Ts t group by t.s",
    # Group keys with a 3VL row filter.
    "select distinct t.k, sum(t.v) as S from Ts t where t.f > 1.0 group by t.k",
    "select distinct t.k, avg(t.v) as A from Ts t where t.s = \"a\" group by t.k",
    # Grouped quantifier heads.
    "select distinct e.dno, max(e.salary) as top from Employees e group by e.dno",
    # Collection-valued nests (the ordered-merge path, [sql:merge]).
    "select distinct struct( D: d, E: ( select distinct e "
    "from e in Employees where e.dno = d.dno ) ) from d in Departments",
]


class TestPushdownParity:
    @pytest.mark.parametrize("source", PARITY_QUERIES)
    def test_parity_pushdown_on_and_off(self, source):
        db = _agg_db() if "Ts" in source or "Empty" in source else DATABASES["company"]()
        reference = _pipeline(db).run_oql(source)
        pushed = _pipeline(db, backend="sqlite").run_oql(source)
        stitched = _pipeline(
            db, backend="sqlite", sqlite_pushdown=False
        ).run_oql(source)
        assert results_equal(reference, pushed)
        assert results_equal(reference, stitched)


class TestPushdownFires:
    def test_reduce_lowers_to_single_aggregate(self):
        db = _agg_db()
        statements = shredded_sql(db, "sum( select t.v from t in Ts )")
        assert len(statements) == 1
        assert "COALESCE(SUM(" in statements[0]
        assert "GROUP BY" not in statements[0]

    def test_group_by_lowers_to_single_statement(self):
        db = _agg_db()
        statements = shredded_sql(
            db, "select distinct t.k, sum(t.v) as S from Ts t group by t.k"
        )
        assert len(statements) == 1
        assert "GROUP BY" in statements[0]
        assert 'ORDER BY MIN("$rn")' in statements[0]

    def test_pushdown_off_pins_the_stitch_path(self):
        db = _agg_db()
        statements = shredded_sql(
            db,
            "select distinct t.k, sum(t.v) as S from Ts t group by t.k",
            pushdown=False,
        )
        assert all("GROUP BY" not in sql for sql in statements)

    def test_explain_markers(self):
        db = DATABASES["company"]()
        compiled = _pipeline(db, backend="sqlite").compile_oql(
            "select distinct e.dno, avg(e.salary) as S from Employees e "
            "where e.age > 30 group by e.dno"
        )
        explain = compiled.explain(db)
        assert "[sql:group]" in explain
        agg = _pipeline(db, backend="sqlite").compile_oql(
            "sum( select e.salary from e in Employees )"
        )
        assert "[sql:agg]" in agg.explain(db)

    def test_explain_analyze_splits_sql_and_decode_time(self):
        db = DATABASES["company"]()
        stats = _pipeline(db, backend="sqlite").run_oql_stats(
            "select distinct e.dno, avg(e.salary) as S from Employees e "
            "group by e.dno"
        )
        assert stats.flat_queries
        for sql, rows, sql_ms, decode_ms in stats.flat_queries:
            assert sql_ms >= 0.0 and decode_ms >= 0.0
        assert "ms sql" in stats.report() and "ms decode" in stats.report()


class TestIndexBackedProbes:
    """EXPLAIN QUERY PLAN goldens: probes run off indexes, not scans."""

    def _plan(self, db, source):
        store = shredded_store(db)
        [sql] = shredded_sql(db, source)
        rows = store.connection.execute(
            f"EXPLAIN QUERY PLAN {sql}"
        ).fetchall()
        return "\n".join(row[-1] for row in rows)

    def test_parent_unnest_uses_child_index(self):
        db = DATABASES["company"]()
        plan = self._plan(
            db,
            "select distinct struct( E: e.name, C: c.name ) "
            "from e in Employees, c in e.children",
        )
        assert "USING INDEX ix$Employees$children" in plan

    def test_equi_join_gets_a_lowering_time_index(self):
        db = DATABASES["company"]()
        source = (
            "select distinct struct( D: d.name, E: e.name ) "
            "from d in Departments, e in Employees where e.dno = d.dno"
        )
        plan = self._plan(db, source)
        store = shredded_store(db)
        indexed = {
            row[0]
            for row in store.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index' "
                "AND name LIKE 'ix$join$%'"
            )
        }
        assert "ix$join$Employees$dno" in indexed
        assert "USING INDEX ix$join$" in plan

    def test_analyze_ran(self):
        db = DATABASES["company"]()
        store = shredded_store(db)
        stats = store.connection.execute(
            "SELECT count(*) FROM sqlite_stat1"
        ).fetchone()
        assert stats[0] > 0


class TestFileBackedStore:
    def test_round_trip_reuses_the_shred(self, tmp_path):
        path = str(tmp_path / "store.db")
        source = "select distinct e.name from e in Employees where e.salary > 70000"
        first_db = DATABASES["company"]()
        first = _pipeline(first_db, backend="sqlite", db_path=path).run_oql(source)
        assert shredded_store(first_db, db_path=path).reused is False
        # A fresh process would see a fresh Database object: same contents,
        # new OIDs.  The manifest fingerprint is value-based, so the shred
        # on disk is reused rather than rebuilt.
        second_db = DATABASES["company"]()
        store = shredded_store(second_db, db_path=path)
        assert store.reused is True
        second = _pipeline(second_db, backend="sqlite", db_path=path).run_oql(source)
        assert results_equal(first, second)
        assert results_equal(second, _pipeline(second_db).run_oql(source))

    def test_object_results_survive_reopen(self, tmp_path):
        path = str(tmp_path / "store.db")
        source = "select distinct e from e in Employees where e.dno = 1"
        first_db = DATABASES["company"]()
        _pipeline(first_db, backend="sqlite", db_path=path).run_oql(source)
        second_db = DATABASES["company"]()
        assert shredded_store(second_db, db_path=path).reused is True
        reopened = _pipeline(second_db, backend="sqlite", db_path=path).run_oql(source)
        assert results_equal(reopened, _pipeline(second_db).run_oql(source))

    def test_stale_manifest_re_shreds(self, tmp_path):
        path = str(tmp_path / "store.db")
        db = _agg_db()
        source = "sum( select t.v from t in Ts )"
        assert _pipeline(db, backend="sqlite", db_path=path).run_oql(source) == 25
        # Different contents -> different fingerprint -> re-shred, and the
        # query sees the new data, not the stale file.
        schema = Schema()
        schema.define_class("T", k=INT, v=INT, f=FLOAT, s=STRING)
        schema.define_extent("Ts", "T")
        schema.define_extent("Empty", "T")
        changed = Database(schema)
        changed.add_extent("Ts", [Record(k=1, v=100, f=0.0, s="z")])
        changed.add_extent("Empty", [])
        store = shredded_store(changed, db_path=path)
        assert store.reused is False
        assert (
            _pipeline(changed, backend="sqlite", db_path=path).run_oql(source)
            == 100
        )

    def test_file_backed_corpus_sweep(self, tmp_path):
        dbs = {family: DATABASES[family]() for family in DATABASES}
        for query in CORPUS:
            db = dbs[query.family]
            path = str(tmp_path / f"{query.family}.db")
            memory = _pipeline(db).run_oql(query.oql)
            filed = _pipeline(db, backend="sqlite", db_path=path).run_oql(query.oql)
            assert results_equal(memory, filed), query.name


class TestPlanCacheInteraction:
    def test_switching_backend_and_db_path_mid_session(self, tmp_path):
        from dataclasses import replace

        db = DATABASES["company"]()
        source = "select distinct e.name from e in Employees where e.salary > 70000"
        pipeline = QueryPipeline(db)
        memory = pipeline.run_oql(source)
        memory_again = pipeline.run_oql(source)  # cache hit
        pipeline.options = replace(pipeline.options, backend="sqlite")
        pipeline.plan_cache.clear()
        shredded = pipeline.run_oql(source)
        path = str(tmp_path / "switch.db")
        pipeline.options = replace(pipeline.options, db_path=path)
        pipeline.plan_cache.clear()
        filed = pipeline.run_oql(source)
        pipeline.options = replace(
            pipeline.options, backend="memory", db_path=None
        )
        pipeline.plan_cache.clear()
        back = pipeline.run_oql(source)
        for result in (memory_again, shredded, filed, back):
            assert results_equal(memory, result)

    def test_options_key_plan_cache_without_manual_clear(self, tmp_path):
        # Distinct pipelines (distinct options) never share compiled plans:
        # the cache key includes the options snapshot, so a db_path switch
        # cannot serve a stale store binding.
        db = DATABASES["company"]()
        source = "count( select e from e in Employees )"
        a = _pipeline(db, backend="sqlite").run_oql(source)
        b = _pipeline(
            db, backend="sqlite", db_path=str(tmp_path / "k.db")
        ).run_oql(source)
        assert a == b

    def test_repl_backend_command_accepts_db_path(self, tmp_path, monkeypatch):
        from repro import cli

        path = str(tmp_path / "repl.db")
        lines = iter(
            [
                f"\\backend sqlite {path}",
                "count( select e from e in Employees );",
                "\\backend memory",
                "count( select e from e in Employees );",
                "\\quit",
            ]
        )
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        out = io.StringIO()
        cli.repl("company", out=out)
        text = out.getvalue()
        assert f"\\backend sqlite (file: {path})" in text
        assert "\\backend memory" in text

    def test_cli_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["--backend", "sqlite", "--db-path", "/tmp/x.db", "count( select e from e in Employees )"]
        )
        assert args.db_path == "/tmp/x.db"


class TestGovernorInsideSqlite:
    def _big_db(self, rows=400):
        schema = Schema()
        schema.define_class("R", k=INT, v=INT)
        schema.define_extent("Rs", "R")
        db = Database(schema)
        db.add_extent(
            "Rs", [Record(k=i % 7, v=i) for i in range(rows)]
        )
        return db

    def test_budget_trips_mid_select(self):
        # The aggregate produces ONE result row, so fetch-time accounting
        # alone could never trip a budget of 1 mid-query; only the progress
        # handler (ticking every few thousand VM opcodes inside the
        # cross-join SELECT) can — and it must surface as the structured
        # governor error, not sqlite3.OperationalError("interrupted").
        db = self._big_db()
        source = "sum( select a.v + b.v from a in Rs, b in Rs where a.k = b.k )"
        with pytest.raises(BudgetExceeded):
            _pipeline(db, backend="sqlite", max_rows=1).run_oql(source)

    def test_store_stays_usable_after_a_trip(self):
        db = self._big_db()
        source = "sum( select a.v + b.v from a in Rs, b in Rs where a.k = b.k )"
        limited = _pipeline(db, backend="sqlite", max_rows=1)
        with pytest.raises(BudgetExceeded):
            limited.run_oql(source)
        unlimited = _pipeline(db, backend="sqlite")
        reference = _pipeline(db).run_oql(source)
        assert unlimited.run_oql(source) == reference
