"""End-to-end tests for the serving layer (repro.server).

Every test drives a real server — :class:`ServerThread` running the
asyncio front-end on its own event loop — through real sockets, with the
blocking :class:`ServeClient` on the test thread(s).  Results are
cross-checked value-for-value against in-process execution of the same
query: the server must never change an answer, only transport it.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from corpus import CORPUS
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.server import ServeClient, ServerConfig, ServerThread, TenantBudget

#: A query slow enough (~800k join pairs on the test database) that a
#: cancel or a competing request reliably lands while it is in flight,
#: but cheap to answer (a single count).
SLOW_QUERY = (
    "count( select struct( a: e1.name, b: e2.name, c: e3.name, d: e4.name ) "
    "from e1 in Employees, e2 in Employees, e3 in Employees, "
    "e4 in Employees )"
)


@pytest.fixture(scope="module")
def server(company_db):
    """One shared server over the company database for the happy paths."""
    with ServerThread(ServerConfig(database=company_db)) as (host, port):
        yield host, port, company_db


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# protocol round-trips
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_hello(self, server):
        host, port, db = server
        with ServeClient(host, port) as client:
            reply = client.hello()
            assert reply.ok
            assert reply["tenant"] == "default"
            assert set(reply["extents"]) == set(db.extent_names())
            assert isinstance(reply["session"], int)
            assert "options" in reply

    def test_query_matches_in_process(self, server):
        host, port, db = server
        reference = Optimizer(db).run_oql(
            "select distinct e.name from e in Employees where e.salary > 50000"
        )
        with ServeClient(host, port) as client:
            reply = client.query(
                "select distinct e.name from e in Employees "
                "where e.salary > 50000"
            )
            assert reply.ok
            assert reply.value() == reference
            assert reply["rows"] >= 1
            assert reply["elapsed_ms"] >= 0

    def test_prepare_execute_params_roundtrip(self, server):
        host, port, db = server
        source = (
            "select distinct e.name from e in Employees "
            "where e.salary > :floor"
        )
        compiled = Optimizer(db).compile_oql(source)
        with ServeClient(host, port) as client:
            prep = client.prepare("above", source)
            assert prep.ok
            assert prep["params"] == ["floor"]
            for floor in (0, 50000, 10**9):
                reply = client.execute("above", params={"floor": floor})
                assert reply.ok
                assert reply.value() == compiled.execute(db, floor=floor)

    def test_prepared_statement_is_session_scoped(self, server):
        host, port, _ = server
        with ServeClient(host, port) as one, ServeClient(host, port) as two:
            assert one.prepare("mine", "count(Employees)").ok
            assert one.execute("mine").ok
            reply = two.execute("mine")
            assert not reply.ok
            assert reply.error_code == "UNKNOWN_STATEMENT"

    def test_out_of_order_responses(self, server):
        """A fast query sent after a slow one answers first; the client
        matches responses by id, not arrival order."""
        host, port, db = server
        reference = Optimizer(db).run_oql("count(Employees)")
        with ServeClient(host, port) as client:
            slow_id = client.send("query", q=SLOW_QUERY)
            fast_id = client.send("query", q="count(Employees)")
            fast = client.wait(fast_id)
            assert fast.ok and fast.value() == reference
            slow = client.wait(slow_id)
            assert slow.ok and slow["rows"] == 1

    def test_session_options_sqlite_backend(self, server):
        host, port, db = server
        queries = [q for q in CORPUS if q.family == "company"][:6]
        references = [Optimizer(db).run_oql(q.oql) for q in queries]
        with ServeClient(host, port) as client:
            reply = client.set_options(backend="sqlite")
            assert reply.ok and reply["applied"] == {"backend": "sqlite"}
            for query, reference in zip(queries, references):
                got = client.query(query.oql)
                assert got.ok, (query.name, got.get("error"))
                assert got.value() == reference, query.name

    def test_set_rejects_unknown_option(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            reply = client.set_options(unnest=False)
            assert not reply.ok
            assert reply.error_code == "PROTOCOL_ERROR"

    def test_set_rejects_db_path(self, server):
        """db_path flows into sqlite3.connect(); a client that could set
        it would make the server write an arbitrary filesystem path."""
        host, port, _ = server
        with ServeClient(host, port) as client:
            reply = client.set_options(db_path="/tmp/evil.db")
            assert not reply.ok
            assert reply.error_code == "PROTOCOL_ERROR"
            assert "db_path" in reply["error"]["message"]
            assert "db_path" not in client.hello()["options"]

    def test_set_bounds_num_workers(self, server):
        """Client-requested worker counts are clamped server-side — a
        session must not spawn an unbounded thread pool."""
        host, port, _ = server
        with ServeClient(host, port) as client:
            for bad in (100000, -1, True, "8", 2.5):
                reply = client.set_options(num_workers=bad)
                assert not reply.ok, bad
                assert reply.error_code == "PROTOCOL_ERROR", bad
            ok = client.set_options(num_workers=2)
            assert ok.ok and ok["applied"] == {"num_workers": 2}

    def test_duplicate_inflight_request_id_rejected(self, server):
        """A request reusing an id that is still in flight is rejected
        (DUPLICATE_REQUEST_ID) instead of silently shadowing the first
        query's cancellation token."""
        host, port, db = server
        with ServeClient(host, port) as client:
            client.send_raw(
                json.dumps({"id": "dup", "op": "query", "q": SLOW_QUERY})
                .encode() + b"\n"
            )
            # Wait until the slow query is registered, then reuse its id.
            assert wait_until(
                lambda: client.stats()["stats"]["admission"]["inflight"] >= 1
            )
            client.send_raw(
                json.dumps(
                    {"id": "dup", "op": "query", "q": "count(Employees)"}
                ).encode() + b"\n"
            )
            rejected = client.wait("dup")
            assert not rejected.ok
            assert rejected.error_code == "DUPLICATE_REQUEST_ID"
            # The original query is still cancellable under its id.
            assert client.cancel("dup")["cancelled"] is True
            done = client.wait("dup")
            assert done.error_code == "QUERY_CANCELLED"


# ---------------------------------------------------------------------------
# typed errors
# ---------------------------------------------------------------------------


class TestTypedErrors:
    def test_planning_error(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            reply = client.query("select from where")
            assert not reply.ok
            assert reply.error_code == "PLANNING_ERROR"
            assert reply["error"]["message"]

    def test_unknown_operation(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            reply = client.call("frobnicate")
            assert reply.error_code == "UNKNOWN_OPERATION"

    def test_malformed_json_line(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            client.send_raw(b"this is not json\n")
            reply = client.wait(None)
            assert reply.error_code == "PROTOCOL_ERROR"

    def test_query_timeout_is_typed(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            assert client.set_options(timeout=0.05).ok
            reply = client.query(SLOW_QUERY)
            assert not reply.ok
            assert reply.error_code == "QUERY_TIMEOUT"

    def test_max_rows_budget_is_typed(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            assert client.set_options(max_rows=10).ok
            reply = client.query("select e from e in Employees")
            assert not reply.ok
            assert reply.error_code == "BUDGET_EXCEEDED"


# ---------------------------------------------------------------------------
# admission control and tenant budgets
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_rejection_shape_when_saturated(self, company_db):
        config = ServerConfig(
            database=company_db, workers=1, max_inflight=1, queue_depth=0
        )
        with ServerThread(config) as (host, port):
            with ServeClient(host, port) as busy, ServeClient(host, port) as rej:
                slow_id = busy.send("query", q=SLOW_QUERY)
                # Wait until the slow query holds the only slot.
                assert wait_until(
                    lambda: rej.stats()["stats"]["admission"]["inflight"] >= 1
                )
                reply = rej.query("count(Employees)")
                assert not reply.ok
                assert reply.error_code == "ADMISSION_REJECTED"
                assert "queue" in reply["error"]["message"]
                busy.cancel(slow_id)
                done = busy.wait(slow_id)
                assert done.error_code in (None, "QUERY_CANCELLED")

    def test_queueing_admits_after_release(self, company_db):
        config = ServerConfig(
            database=company_db, workers=2, max_inflight=1, queue_depth=4
        )
        with ServerThread(config) as (host, port):
            with ServeClient(host, port) as client:
                first = client.send("query", q="count(Employees)")
                second = client.send("query", q="count(Departments)")
                assert client.wait(first).ok
                assert client.wait(second).ok

    def test_server_config_is_not_mutated(self, company_db):
        """Deriving the default admission limits must not write them back
        into the caller's ServerConfig — a config reused for a second
        server would silently keep the first server's numbers."""
        config = ServerConfig(database=company_db, workers=4)
        with ServerThread(config) as (host, port):
            with ServeClient(host, port) as client:
                admission = client.stats()["stats"]["admission"]
                assert admission["max_inflight"] == 4
                assert admission["queue_depth"] == 8
        assert config.max_inflight is None
        assert config.queue_depth is None

    def test_tenant_budget_exhaustion(self, company_db):
        config = ServerConfig(
            database=company_db,
            tenant_budget=TenantBudget(max_queries=2),
        )
        with ServerThread(config) as (host, port):
            with ServeClient(host, port) as client:
                assert client.query("count(Employees)").ok
                assert client.query("count(Departments)").ok
                reply = client.query("count(Employees)")
                assert not reply.ok
                assert reply.error_code == "TENANT_BUDGET_EXHAUSTED"

    def test_tenants_are_isolated(self, company_db):
        config = ServerConfig(
            database=company_db,
            tenant_budget=TenantBudget(max_queries=1),
        )
        with ServerThread(config) as (host, port):
            with ServeClient(host, port) as a, ServeClient(host, port) as b:
                assert a.hello(tenant="alpha").ok
                assert b.hello(tenant="beta").ok
                assert a.query("count(Employees)").ok
                assert a.query("count(Employees)").error_code == (
                    "TENANT_BUDGET_EXHAUSTED"
                )
                # beta has its own budget, unaffected by alpha's exhaustion.
                assert b.query("count(Employees)").ok


# ---------------------------------------------------------------------------
# cancellation
# ---------------------------------------------------------------------------


class TestCancellation:
    def _cancel_when_inflight(self, client, target):
        """Retry ``cancel`` until the request has actually registered."""
        assert wait_until(
            lambda: client.call("cancel", target=target)["cancelled"]
        ), "query never became cancellable"

    def test_cancel_inflight_query(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            qid = client.send("query", q=SLOW_QUERY)
            self._cancel_when_inflight(client, qid)
            reply = client.wait(qid)
            assert not reply.ok
            assert reply.error_code == "QUERY_CANCELLED"

    def test_cancel_unknown_request_is_a_noop(self, server):
        host, port, _ = server
        with ServeClient(host, port) as client:
            reply = client.cancel(99999)
            assert reply.ok
            assert reply["cancelled"] is False

    def test_cancellation_is_session_isolated(self, server):
        """Cancelling session A's query must not disturb session B's —
        tokens are per-request, not per-database or per-server."""
        host, port, db = server
        reference = Optimizer(db).run_oql("count(Employees)")
        with ServeClient(host, port) as a, ServeClient(host, port) as b:
            results = []

            def b_runs_queries():
                for _ in range(5):
                    results.append(b.query("count(Employees)"))

            slow_id = a.send("query", q=SLOW_QUERY)
            worker = threading.Thread(target=b_runs_queries)
            worker.start()
            self._cancel_when_inflight(a, slow_id)
            cancelled = a.wait(slow_id)
            worker.join(timeout=30)
            assert not worker.is_alive()
            assert cancelled.error_code == "QUERY_CANCELLED"
            assert len(results) == 5
            for reply in results:
                assert reply.ok, reply.get("error")
                assert reply.value() == reference

    def test_disconnect_cancels_inflight_queries(self, server):
        """Dropping the socket mid-query trips the query's token and the
        session is reaped; other sessions keep working."""
        host, port, db = server
        watcher = ServeClient(host, port)
        try:
            before = watcher.stats()["stats"]["server"]["sessions"]
            doomed = ServeClient(host, port)
            doomed.send("query", q=SLOW_QUERY)
            assert wait_until(
                lambda: watcher.stats()["stats"]["admission"]["inflight"] >= 1
            )
            doomed.close(polite=False)
            assert wait_until(
                lambda: watcher.stats()["stats"]["server"]["sessions"]
                <= before
            ), "disconnected session was never cleaned up"
            assert wait_until(
                lambda: watcher.stats()["stats"]["admission"]["inflight"] == 0
            ), "in-flight query survived its connection"
            endpoints = watcher.stats()["stats"]["metrics"]["endpoints"]
            assert "disconnect_cancel" in endpoints
            # The server still answers.
            reference = Optimizer(db).run_oql("count(Employees)")
            assert watcher.query("count(Employees)").value() == reference
        finally:
            watcher.close(polite=False)


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_query_metrics_counters(self, company_db):
        with ServerThread(ServerConfig(database=company_db)) as (host, port):
            with ServeClient(host, port) as client:
                for _ in range(4):
                    assert client.query("count(Employees)").ok
                assert not client.query("syntax error here").ok
                stats = client.stats()["stats"]
            queries = stats["metrics"]["endpoints"]["query"]
            assert queries["requests"] == 5
            assert queries["errors"] == 1
            assert queries["p50_ms"] >= 0
            assert queries["p99_ms"] >= queries["p50_ms"]
            assert 0 < queries["cache_hit_rate"] <= 1.0
            cache = stats["plan_cache"]
            # One compile, three hits (the failed parse never caches).
            assert cache["misses"] >= 1
            assert cache["hits"] >= 3

    def test_plan_cache_is_shared_across_sessions(self, company_db):
        with ServerThread(ServerConfig(database=company_db)) as (host, port):
            with ServeClient(host, port) as one:
                assert one.query("count(Departments)").ok
            with ServeClient(host, port) as two:
                assert two.query("count(Departments)").ok
                cache = two.stats()["stats"]["plan_cache"]
                assert cache["hits"] >= 1, (
                    "second session should hit the first session's plan"
                )


# ---------------------------------------------------------------------------
# the HTTP endpoint
# ---------------------------------------------------------------------------


def _http(host, port, path, body=None, method=None):
    url = f"http://{host}:{port}{path}"
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        method=method or ("POST" if data else "GET"),
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestHttp:
    def test_post_query(self, server):
        host, port, db = server
        reference = Optimizer(db).run_oql("count(Employees)")
        status, body = _http(host, port, "/query", {"q": "count(Employees)"})
        assert status == 200
        assert body["ok"] is True
        from repro.server.protocol import decode_result

        assert decode_result(body["result"]) == reference

    def test_post_bad_query_maps_to_400(self, server):
        host, port, _ = server
        status, body = _http(host, port, "/query", {"q": "select from"})
        assert status == 400
        assert body["error"]["code"] == "PLANNING_ERROR"

    def test_get_stats(self, server):
        host, port, _ = server
        status, body = _http(host, port, "/stats")
        assert status == 200
        assert "metrics" in body["stats"]

    def test_unknown_path_404(self, server):
        host, port, _ = server
        status, body = _http(host, port, "/nope", {"q": "count(Employees)"})
        assert status == 404
        assert body["error"]["code"] == "PROTOCOL_ERROR"

    def test_body_without_query_400(self, server):
        host, port, _ = server
        status, body = _http(host, port, "/query", {"nope": 1})
        assert status == 400
        assert body["error"]["code"] == "PROTOCOL_ERROR"

    def test_header_flood_is_bounded(self, server):
        """A client streaming header lines forever must be rejected
        promptly (400 / connection close), not pin the connection.
        Pre-fix, the server read header lines without limit and this
        test timed out waiting for a response."""
        import socket

        host, port, _ = server
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(b"POST /query HTTP/1.1\r\n")
            try:
                for index in range(200):
                    sock.sendall(f"X-Flood-{index}: y\r\n".encode())
            except (BrokenPipeError, ConnectionResetError):
                pass  # the server already hung up on us — also a pass
            # The server answers (or resets) after the 100-line cap; the
            # reset can race the 400 bytes off the wire, so accept both.
            response = b""
            try:
                while b"\r\n" not in response:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    response += chunk
            except ConnectionError:
                pass
            if response:
                assert response.startswith(b"HTTP/1.1 400")

    def test_http_tenant_budget_maps_to_429(self, company_db):
        config = ServerConfig(
            database=company_db, tenant_budget=TenantBudget(max_queries=1)
        )
        with ServerThread(config) as (host, port):
            status, _ = _http(
                host, port, "/query", {"q": "count(Employees)", "tenant": "t"}
            )
            assert status == 200
            status, body = _http(
                host, port, "/query", {"q": "count(Employees)", "tenant": "t"}
            )
            assert status == 429
            assert body["error"]["code"] == "TENANT_BUDGET_EXHAUSTED"


# ---------------------------------------------------------------------------
# concurrency: the corpus under 8 clients, cross-checked
# ---------------------------------------------------------------------------


FAMILIES = sorted({q.family for q in CORPUS})


@pytest.mark.parametrize("family", FAMILIES)
def test_concurrent_clients_agree_with_in_process(family, databases):
    """Eight concurrent clients each run the family's full corpus slice;
    every response must equal the in-process answer (ISSUE acceptance:
    zero incorrect results under concurrency)."""
    db = databases[family]
    queries = [q for q in CORPUS if q.family == family]
    references = {q.name: Optimizer(db).run_oql(q.oql) for q in queries}
    failures: list[str] = []
    with ServerThread(ServerConfig(database=db)) as (host, port):

        def one_client(client_index: int) -> None:
            try:
                with ServeClient(host, port) as client:
                    for query in queries:
                        reply = client.query(query.oql)
                        if not reply.ok:
                            failures.append(
                                f"client {client_index} {query.name}: "
                                f"{reply.get('error')}"
                            )
                        elif reply.value() != references[query.name]:
                            failures.append(
                                f"client {client_index} {query.name}: "
                                "wrong result"
                            )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(f"client {client_index}: {exc!r}")

        threads = [
            threading.Thread(target=one_client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "client thread hung"
    assert failures == []
