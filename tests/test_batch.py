"""Batch-at-a-time execution: chunk plumbing, tier-3 kernels, row parity.

The batch layer's contract is that it is *observationally identical* to the
tuple-at-a-time path it replaced as the default: same results, same
structured errors at the same rows, same governor work-unit totals on
draining queries.  These tests pin that contract directly — batch vs row
on the same database — plus the chunk-boundary mechanics (partial chunks,
tiny and non-divisible batch sizes, empty inputs), the kernel truncation
protocol, and the EXPLAIN ANALYZE chunk accounting.
"""

from __future__ import annotations

from itertools import product

import pytest

from repro.calculus.terms import BinOp, Const, Var
from repro.core.optimizer import OptimizerOptions
from repro.core.pipeline import QueryPipeline
from repro.data.database import Database
from repro.data.values import NULL, CollectionValue, Record
from repro.engine.batch import DEFAULT_BATCH_SIZE, Chunk, chunk_rows
from repro.engine.compile import ExprCompiler
from repro.errors import QueryError
from repro.testing.oracle import results_equal


def run_both(db, oql, batch_size=DEFAULT_BATCH_SIZE, **params):
    """Execute *oql* batched and row-at-a-time; assert agreement."""
    batched = QueryPipeline(db, OptimizerOptions(batch_size=batch_size))
    rowed = QueryPipeline(db, OptimizerOptions(batched_exec=False))
    b = batched.run_oql(oql, **params)
    r = rowed.run_oql(oql, **params)
    assert results_equal(b, r), f"batch/row disagreement on {oql!r}"
    return b


def both_fail(db, oql, batch_size=DEFAULT_BATCH_SIZE):
    """Both paths must fail with a structured QueryError; return the pair."""
    with pytest.raises(QueryError) as bexc:
        QueryPipeline(db, OptimizerOptions(batch_size=batch_size)).run_oql(oql)
    with pytest.raises(QueryError) as rexc:
        QueryPipeline(db, OptimizerOptions(batched_exec=False)).run_oql(oql)
    return bexc.value, rexc.value


# ---------------------------------------------------------------------------
# Chunk plumbing
# ---------------------------------------------------------------------------


class TestChunkRows:
    def test_chunks_are_never_empty_and_sizes_add_up(self):
        rows = [{"x": i} for i in range(10)]
        chunks = list(chunk_rows(iter(rows), 3))
        assert [c.length for c in chunks] == [3, 3, 3, 1]
        assert all(c.length > 0 for c in chunks)
        assert [e for c in chunks for e in c.envs()] == rows

    def test_lazy_error_delivery_flushes_partial_chunk_first(self):
        def rows():
            yield {"x": 1}
            yield {"x": 2}
            raise ValueError("poison")

        stream = chunk_rows(rows(), 5)
        chunk = next(stream)
        assert chunk.length == 2 and chunk.columns["x"] == [1, 2]
        with pytest.raises(ValueError, match="poison"):
            next(stream)

    def test_env_roundtrip(self):
        envs = [{"a": i, "b": -i} for i in range(4)]
        chunk = Chunk.from_envs(envs)
        assert chunk.length == 4
        assert chunk.env_at(2) == envs[2]
        assert list(chunk.envs()) == envs

    def test_from_envs_rejects_empty_input(self):
        # Chunks are never empty: a producer with nothing to emit must skip
        # the yield, not construct a zero-row chunk a kernel would choke on.
        with pytest.raises(ValueError, match="at least one row"):
            Chunk.from_envs([])

    def test_key_set_mismatch_fails_loud_on_missing_column(self):
        rows = iter([{"a": 1, "b": 2}, {"a": 3, "c": 4}])
        stream = chunk_rows(rows, 10)
        with pytest.raises(ValueError, match="binds columns"):
            list(stream)

    def test_key_set_mismatch_fails_loud_on_extra_column(self):
        # Same column count but different names must not silently borrow
        # the first row's schema.
        rows = iter([{"a": 1}, {"a": 2, "b": 3}])
        stream = chunk_rows(rows, 10)
        with pytest.raises(ValueError, match="binds columns"):
            list(stream)


# ---------------------------------------------------------------------------
# Tier-3 kernels: a full operator/value sweep against the row closures
# ---------------------------------------------------------------------------


class TestKernelSweep:
    #: Every scalar shape the engine's 3VL arithmetic can meet, NULL
    #: included; the cross product drives every kernel branch (NULL
    #: propagation, scalar comparison, identity comparison, zero division,
    #: type faults) through the comprehension fast form and its slow rerun.
    VALUES = (0, 1, 2, 2.5, -3, NULL, True, False, "s", "t")

    @pytest.mark.parametrize(
        "op", ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
               "and", "or"]
    )
    def test_kernel_matches_row_closure(self, op):
        compiler = ExprCompiler()
        term = BinOp(op, Var("x"), Var("y"))
        kernel = compiler.compile_kernel(term)
        closure = compiler.compile(term)
        pairs = list(product(self.VALUES, repeat=2))
        cols = {"x": [p[0] for p in pairs], "y": [p[1] for p in pairs]}
        values, t, err = kernel.fn(cols, len(pairs))
        assert len(values) == t
        for i in range(t):
            expect = closure.fn({"x": pairs[i][0], "y": pairs[i][1]})
            assert values[i] is expect or values[i] == expect or (
                expect is NULL and values[i] is NULL
            ), f"{op}: row {i} {pairs[i]} -> {values[i]!r} != {expect!r}"
        if t < len(pairs):
            # The kernel truncated: the row closure must fault on the very
            # same operand pair, with the very same error class.
            assert err is not None
            with pytest.raises(type(err)):
                closure.fn({"x": pairs[t][0], "y": pairs[t][1]})

    def test_predicate_kernel_three_valued_filter(self):
        # x > y under 3VL: NULL operands filter as False, never raise.
        compiler = ExprCompiler()
        term = BinOp(">", Var("x"), Const(1))
        kernel = compiler.compile_predicate_kernel(term)
        col = [0, 1, 2, NULL, 5]
        flags, t, err = kernel.fn({"x": col}, len(col))
        assert err is None and t == len(col)
        assert flags == [False, False, True, False, True]


# ---------------------------------------------------------------------------
# 3VL and NULL handling through full queries
# ---------------------------------------------------------------------------


def _null_db() -> Database:
    db = Database()
    db.add_extent(
        "T",
        [
            Record(a=1, b=10),
            Record(a=NULL, b=20),
            Record(a=3, b=NULL),
            Record(a=NULL, b=NULL),
            Record(a=5, b=50),
            Record(a=0, b=60),
        ],
    )
    return db


NULL_QUERIES = (
    "select t.a + t.b from t in T",
    "select t.a * 2 - t.b from t in T",
    "select t from t in T where t.a > 2",
    "select t from t in T where t.a > 2 and t.b < 55",
    "select t from t in T where t.a > 2 or t.b > 15",
    "select t from t in T where not (t.a = 3)",
    "select struct(s: t.a + t.b, p: t.a) from t in T where t.b >= 10",
    "sum( select t.a from t in T where t.b > 5 )",
    "count( select t from t in T where t.a = t.a )",
    "exists t in T: t.a = 5",
    "for all t in T: t.b > 5",
)


class TestNullQueries:
    @pytest.mark.parametrize("oql", NULL_QUERIES)
    @pytest.mark.parametrize("size", [1, 2, 7, DEFAULT_BATCH_SIZE])
    def test_batch_agrees_with_row_under_nulls(self, oql, size):
        run_both(_null_db(), oql, batch_size=size)


# ---------------------------------------------------------------------------
# Error truncation semantics
# ---------------------------------------------------------------------------


class TestErrorTruncation:
    def _db(self, values) -> Database:
        # A *list* extent: these tests pin down where in the scan order the
        # fault sits relative to the witness.
        db = Database()
        db.add_extent("N", [Record(v=v) for v in values], kind="list")
        return db

    @pytest.mark.parametrize("size", [1, 3, DEFAULT_BATCH_SIZE])
    def test_mid_stream_division_fault_on_both_paths(self, size):
        # The zero sits mid-extent: the batch kernel truncates its chunk at
        # that row and the rerun raises the same structured error the row
        # path raises.
        db = self._db([5, 4, 0, 2, 1])
        b, r = both_fail(db, "select 100 / n.v from n in N", batch_size=size)
        assert "zero" in str(b) and "zero" in str(r)
        assert type(b) is type(r)

    def test_exists_witness_before_fault_succeeds_on_both_paths(self):
        # The witness (v = 5, where 100/5 > 10) precedes the poison row
        # inside the same chunk: `some` merges the kernel's truncated
        # prefix in stream order and short-circuits before the captured
        # error would surface — exactly the row path's laziness.
        db = self._db([5, 0, 3])
        assert run_both(db, "exists n in N: 100 / n.v > 10") is True

    def test_exists_witness_after_fault_fails_on_both_paths(self):
        db = self._db([50, 0, 5])
        both_fail(db, "exists n in N: 100 / n.v > 10")

    def test_witness_in_earlier_chunk_skips_poisoned_chunk(self):
        # With two-row chunks the witness chunk completes before the
        # poisoned row's chunk is ever pulled: short-circuit consumption
        # must not force the fault.
        db = self._db([5, 6, 7, 0])
        assert run_both(db, "exists n in N: 100 / n.v > 10",
                        batch_size=2) is True


# ---------------------------------------------------------------------------
# Governor work-unit parity
# ---------------------------------------------------------------------------


DRAINING_QUERIES = (
    "sum( select e.salary from e in Employees )",
    "select e.name from e in Employees where e.salary > 30000",
    "count( select struct(e: e.name, d: d.name) from e in Employees, "
    "d in Departments where e.dno = d.dno )",
    "select struct( D: d.dno, N: count( select e from e in Employees "
    "where e.dno = d.dno ) ) from d in Departments",
)


class TestGovernorParity:
    @pytest.mark.parametrize("oql", DRAINING_QUERIES)
    def test_work_units_match_row_mode(self, oql, company_db):
        # A timeout configures a governor without a row budget, so the
        # batch paths stay active and every operator still ticks; draining
        # queries (no short-circuit) must account identical totals.
        batched = QueryPipeline(
            company_db, OptimizerOptions(timeout=3600.0)
        ).run_oql_stats(oql)
        rowed = QueryPipeline(
            company_db, OptimizerOptions(timeout=3600.0, batched_exec=False)
        ).run_oql_stats(oql)
        assert results_equal(batched.result, rowed.result)
        assert batched.governor_ticks == rowed.governor_ticks


# ---------------------------------------------------------------------------
# Batch boundaries
# ---------------------------------------------------------------------------


BOUNDARY_QUERIES = (
    "select e.name from e in Employees where e.salary > 30000",
    "select struct(e: e.name, c: c.name) from e in Employees, "
    "c in e.children where c.age > 5",
    "select distinct d.name from e in Employees, d in Departments "
    "where e.dno = d.dno",
    "avg( select e.salary from e in Employees where e.age < 50 )",
)


class TestBoundaries:
    @pytest.mark.parametrize("oql", BOUNDARY_QUERIES)
    @pytest.mark.parametrize("size", [1, 7])
    def test_tiny_and_non_divisible_chunks(self, oql, size, company_db):
        run_both(company_db, oql, batch_size=size)

    def test_empty_extent(self):
        db = Database()
        db.add_extent("E", [Record(x=1)])
        db.add_extent("F", [])
        result = run_both(db, "select f.x from f in F")
        assert isinstance(result, CollectionValue) and len(result) == 0
        assert run_both(db, "count( select f from f in F )") == 0

    def test_interpreted_runs_stay_on_the_row_path(self, company_db):
        # batched_exec needs tier-3 kernels; with expression compilation
        # off the plan must silently run row-at-a-time and still agree.
        pipeline = QueryPipeline(
            company_db, OptimizerOptions(compiled_exprs=False)
        )
        oql = "select e.name from e in Employees where e.salary > 30000"
        stats = pipeline.run_oql_stats(oql)
        assert all(op.batches_produced == 0 for op in stats.operators)
        assert results_equal(
            stats.result, QueryPipeline(company_db).run_oql(oql)
        )


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE chunk accounting
# ---------------------------------------------------------------------------


class TestExplainAnalyze:
    def test_report_carries_batch_annotations(self, company_db):
        stats = QueryPipeline(company_db).run_oql_stats(
            "select struct(e: e.name, d: d.name) from e in Employees, "
            "d in Departments where e.dno = d.dno"
        )
        report = stats.report()
        assert "batches=" in report and "batch_rows=" in report

    @pytest.mark.parametrize("size", [1, 7, DEFAULT_BATCH_SIZE])
    def test_root_accounting_balances(self, size, company_db):
        oql = ("select struct(e: e.name, d: d.name) from e in Employees, "
               "d in Departments where e.dno = d.dno")
        stats = QueryPipeline(
            company_db, OptimizerOptions(batch_size=size)
        ).run_oql_stats(oql)
        root = stats.operators[0]
        assert root.rows_produced == len(stats.result)
        # Every chunked operator's chunk row total matches the rows it
        # produced — chunks are an accounting view, not a second stream.
        chunked = [op for op in stats.operators if op.batches_produced]
        assert chunked, "batched execution produced no chunks"
        for op in chunked:
            assert op.batch_rows == op.rows_produced

    def test_chunk_count_respects_batch_size(self, company_db):
        oql = "select e.name from e in Employees"
        stats = QueryPipeline(
            company_db, OptimizerOptions(batch_size=7)
        ).run_oql_stats(oql)
        scan = next(
            op for op in stats.operators if op.operator.startswith("Scan")
        )
        expected = -(-scan.rows_produced // 7)  # ceil division
        assert scan.batches_produced == expected


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_cached_reexecution_stays_batched(self, company_db):
        pipeline = QueryPipeline(company_db)
        oql = "select e.name from e in Employees where e.salary > 30000"
        first = pipeline.run_oql_stats(oql)
        second = pipeline.run_oql_stats(oql)
        assert second.from_cache
        assert results_equal(first.result, second.result)
        assert any(op.batches_produced for op in second.operators)
