"""Edge cases across the pipeline: empty databases, degenerate queries,
deeply composed features, and pathological-but-legal inputs."""

from __future__ import annotations

import pytest

from repro.calculus.evaluator import evaluate
from repro.core.optimizer import Optimizer, OptimizerOptions
from repro.data.database import Database
from repro.data.datagen import company_database, university_database
from repro.data.schema import FLOAT, INT, STRING, Schema
from repro.data.values import Record, SetValue, is_null


def _empty_company() -> Database:
    from repro.data.datagen import company_schema

    db = Database(company_schema())
    db.add_extent("Employees", [])
    db.add_extent("Departments", [])
    db.add_extent("Managers", [])
    return db


class TestEmptyDatabase:
    """Every strategy must agree on zero data (the zero-element laws)."""

    QUERIES = [
        "select distinct e.name from e in Employees",
        "count( select e from e in Employees )",
        "max( select e.salary from e in Employees )",
        "select distinct struct( D: d.dno, K: count( select e from e in "
        "Employees where e.dno = d.dno ) ) from d in Departments",
        "for all e in Employees: e.age > 1000",
        "select distinct e.name from e in Employees "
        "where e.salary >= max( select u.salary from u in Employees )",
    ]

    @pytest.mark.parametrize("source", QUERIES)
    def test_strategies_agree_on_empty(self, source):
        db = _empty_company()
        fast = Optimizer(db).run_oql(source)
        naive = Optimizer(db, OptimizerOptions(unnest=False)).run_oql(source)
        assert fast == naive

    def test_forall_over_empty_is_true(self):
        db = _empty_company()
        assert Optimizer(db).run_oql("for all e in Employees: false") is True

    def test_exists_over_empty_is_false(self):
        db = _empty_company()
        result = Optimizer(db).run_oql(
            "select distinct d from d in Departments "
            "where exists e in Employees: true"
        )
        assert len(result) == 0

    def test_avg_over_empty_is_null(self):
        db = _empty_company()
        assert is_null(Optimizer(db).run_oql("avg( select e.age from e in Employees )"))


class TestDegenerateQueries:
    @pytest.fixture(scope="class")
    def db(self):
        return company_database(10, 3, seed=31)

    def test_tautological_predicate(self, db):
        result = Optimizer(db).run_oql(
            "select distinct e.oid from e in Employees where 1 = 1"
        )
        assert len(result) == 10

    def test_contradictory_predicate_folds_to_empty(self, db):
        compiled = Optimizer(db).compile_oql(
            "select distinct e.oid from e in Employees where 1 = 2"
        )
        assert len(compiled.execute(db)) == 0

    def test_self_join_same_extent(self, db):
        result = Optimizer(db).run_oql(
            "select distinct struct( A: a.oid, B: b.oid ) "
            "from a in Employees, b in Employees where a.oid < b.oid"
        )
        assert len(result) == 10 * 9 // 2

    def test_quantifier_over_singleton_domain(self, db):
        assert Optimizer(db).run_oql(
            "for all e in ( select e from e in Employees where e.oid = 0 ): "
            "e.oid = 0"
        ) is True

    def test_deeply_parenthesized(self, db):
        result = Optimizer(db).run_oql(
            "select distinct ((((e.oid)))) from e in Employees where (((e.age))) > 0"
        )
        assert len(result) == 10

    def test_set_op_with_empty_side(self, db):
        result = Optimizer(db).run_oql(
            "( select distinct e.oid from e in Employees ) except "
            "( select distinct e.oid from e in Employees where 1 = 2 )"
        )
        assert len(result) == 10

    def test_union_is_idempotent(self, db):
        once = Optimizer(db).run_oql("select distinct e.oid from e in Employees")
        doubled = Optimizer(db).run_oql(
            "( select distinct e.oid from e in Employees ) union "
            "( select distinct e.oid from e in Employees )"
        )
        assert once == doubled

    def test_intersect_with_itself(self, db):
        once = Optimizer(db).run_oql("select distinct e.oid from e in Employees")
        selfed = Optimizer(db).run_oql(
            "( select distinct e.oid from e in Employees ) intersect "
            "( select distinct e.oid from e in Employees )"
        )
        assert once == selfed


class TestNullData:
    """NULLs stored *in* the data flow correctly through the pipeline."""

    def _db(self):
        schema = Schema()
        schema.define_class("T", k=INT, v=FLOAT)
        schema.define_extent("Ts", "T")
        db = Database(schema)
        from repro.data.values import NULL

        db.add_extent(
            "Ts",
            [Record(k=1, v=10.0), Record(k=2, v=NULL), Record(k=3, v=30.0)],
        )
        return db

    def test_aggregate_skips_stored_nulls(self):
        db = self._db()
        assert Optimizer(db).run_oql("sum( select t.v from t in Ts )") == 40.0

    def test_comparison_with_null_is_not_a_match(self):
        db = self._db()
        result = Optimizer(db).run_oql(
            "select distinct t.k from t in Ts where t.v > 0"
        )
        assert result == SetValue([1, 3])

    def test_strategies_agree_on_null_data(self):
        db = self._db()
        for source in (
            "select distinct t.k from t in Ts where t.v >= 10",
            "count( select t from t in Ts where t.v > 0 )",
            "avg( select t.v from t in Ts )",
        ):
            fast = Optimizer(db).run_oql(source)
            naive = Optimizer(db, OptimizerOptions(unnest=False)).run_oql(source)
            assert fast == naive, source


class TestCompositions:
    """Several features at once: views + set ops + order by + group by."""

    def test_kitchen_sink(self):
        db = university_database(25, 10, seed=31)
        optimizer = Optimizer(db)
        optimizer.define_view(
            "define Graded as select distinct t from t in Transcript "
            "where t.grade >= 2"
        )
        result = optimizer.run_oql(
            "select g.cno as course, count(g) as takers from Graded g "
            "group by g.cno having count(g) > 1 order by takers desc, course"
        )
        rows = list(result)
        takers = [r["takers"] for r in rows]
        assert takers == sorted(takers, reverse=True)
        assert all(r["takers"] > 1 for r in rows)

    def test_set_op_of_views(self):
        db = university_database(25, 10, seed=31)
        optimizer = Optimizer(db)
        optimizer.define_view(
            "define Young as select distinct s.id from s in Student "
            "where s.age < 24"
        )
        optimizer.define_view(
            "define Enrolled as select distinct t.id from t in Transcript"
        )
        both = optimizer.run_oql(
            "( select distinct y from y in Young ) intersect "
            "( select distinct e from e in Enrolled )"
        )
        young = optimizer.run_oql("select distinct y from y in Young")
        enrolled = optimizer.run_oql("select distinct e from e in Enrolled")
        expected = SetValue(set(young.elements()) & set(enrolled.elements()))
        assert both == expected
