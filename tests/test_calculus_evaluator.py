"""Unit tests for the reference calculus semantics (rules D1–D7 and the
NULL policy)."""

from __future__ import annotations

import pytest

from repro.calculus.evaluator import EvaluationError, Evaluator, evaluate
from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Extent,
    If,
    IsNull,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Proj,
    Singleton,
    Var,
    Zero,
    comprehension,
    const,
    path,
    record,
    var,
)
from repro.data.database import Database
from repro.data.values import NULL, BagValue, ListValue, Record, SetValue, is_null


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.add_extent(
        "Nums", [Record(v=1), Record(v=2), Record(v=3), Record(v=4)]
    )
    database.add_extent(
        "Pairs",
        [
            Record(k=1, items=SetValue([10, 20])),
            Record(k=2, items=SetValue([])),
            Record(k=3, items=SetValue([30])),
        ],
    )
    return database


class TestAtoms:
    def test_const(self, db):
        assert evaluate(const(42), db) == 42

    def test_null(self, db):
        assert is_null(evaluate(Null(), db))

    def test_var_binding(self, db):
        assert evaluate(var("x"), db, {"x": 7}) == 7

    def test_unbound_var_message(self, db):
        with pytest.raises(EvaluationError, match="unbound variable 'x'"):
            evaluate(var("x"), db)

    def test_extent(self, db):
        assert len(evaluate(Extent("Nums"), db)) == 4

    def test_unknown_extent(self, db):
        with pytest.raises(KeyError, match="unknown extent"):
            evaluate(Extent("Nope"), db)


class TestRecordsAndProjection:
    def test_record_construction(self, db):
        assert evaluate(record(a=const(1)), db) == Record(a=1)

    def test_projection(self, db):
        assert evaluate(Proj(record(a=const(1)), "a"), db) == 1

    def test_projection_of_null_is_null(self, db):
        assert is_null(evaluate(Proj(Null(), "a"), db))

    def test_projection_of_scalar_fails(self, db):
        with pytest.raises(EvaluationError, match="non-record"):
            evaluate(Proj(const(1), "a"), db)


class TestFunctionsAndControl:
    def test_lambda_apply(self, db):
        term = Apply(Lambda("x", BinOp("+", var("x"), const(1))), const(2))
        assert evaluate(term, db) == 3

    def test_apply_non_function(self, db):
        with pytest.raises(EvaluationError, match="non-function"):
            evaluate(Apply(const(1), const(2)), db)

    def test_if_true_false(self, db):
        assert evaluate(If(const(True), const(1), const(2)), db) == 1
        assert evaluate(If(const(False), const(1), const(2)), db) == 2

    def test_if_null_takes_else(self, db):
        assert evaluate(If(Null(), const(1), const(2)), db) == 2

    def test_let(self, db):
        term = Let("x", const(5), BinOp("*", var("x"), var("x")))
        assert evaluate(term, db) == 25


class TestOperators:
    def test_arithmetic(self, db):
        assert evaluate(BinOp("+", const(2), const(3)), db) == 5
        assert evaluate(BinOp("-", const(2), const(3)), db) == -1
        assert evaluate(BinOp("*", const(2), const(3)), db) == 6
        assert evaluate(BinOp("/", const(7), const(2)), db) == 3.5

    def test_division_by_zero(self, db):
        with pytest.raises(EvaluationError, match="division by zero"):
            evaluate(BinOp("/", const(1), const(0)), db)

    def test_comparisons(self, db):
        assert evaluate(BinOp("<", const(1), const(2)), db) is True
        assert evaluate(BinOp(">=", const(1), const(2)), db) is False
        assert evaluate(BinOp("==", const("a"), const("a")), db) is True
        assert evaluate(BinOp("!=", const("a"), const("b")), db) is True

    def test_null_propagates_through_strict_ops(self, db):
        assert is_null(evaluate(BinOp("+", Null(), const(1)), db))
        assert is_null(evaluate(BinOp("==", Null(), Null()), db))
        assert is_null(evaluate(Not(Null()), db))

    def test_and_or_short_circuit_around_null(self, db):
        assert evaluate(BinOp("and", const(False), Null()), db) is False
        assert evaluate(BinOp("or", const(True), Null()), db) is True
        assert is_null(evaluate(BinOp("and", const(True), Null()), db))
        assert is_null(evaluate(BinOp("or", const(False), Null()), db))

    def test_is_null(self, db):
        assert evaluate(IsNull(Null()), db) is True
        assert evaluate(IsNull(const(0)), db) is False

    def test_not(self, db):
        assert evaluate(Not(const(True)), db) is False
        with pytest.raises(EvaluationError):
            evaluate(Not(const(1)), db)


class TestCollections:
    def test_zero_singleton_merge(self, db):
        assert evaluate(Zero("set"), db) == SetValue()
        assert evaluate(Singleton("set", const(1)), db) == SetValue([1])
        merged = Merge("set", Singleton("set", const(1)), Singleton("set", const(2)))
        assert evaluate(merged, db) == SetValue([1, 2])

    def test_bag_merge_keeps_duplicates(self, db):
        merged = Merge("bag", Singleton("bag", const(1)), Singleton("bag", const(1)))
        assert evaluate(merged, db) == BagValue([1, 1])

    def test_list_merge_keeps_order(self, db):
        merged = Merge("list", Singleton("list", const(2)), Singleton("list", const(1)))
        assert evaluate(merged, db) == ListValue([2, 1])

    def test_singleton_of_primitive_monoid_fails(self, db):
        with pytest.raises(EvaluationError):
            evaluate(Singleton("sum", const(1)), db)


class TestComprehensions:
    def test_set_comprehension(self, db):
        comp = comprehension("set", path("n", "v"), ("n", Extent("Nums")))
        assert evaluate(comp, db) == SetValue([1, 2, 3, 4])

    def test_filter(self, db):
        comp = comprehension(
            "set", path("n", "v"), ("n", Extent("Nums")),
            BinOp(">", path("n", "v"), const(2)),
        )
        assert evaluate(comp, db) == SetValue([3, 4])

    def test_sum(self, db):
        comp = comprehension("sum", path("n", "v"), ("n", Extent("Nums")))
        assert evaluate(comp, db) == 10

    def test_prod(self, db):
        comp = comprehension("prod", path("n", "v"), ("n", Extent("Nums")))
        assert evaluate(comp, db) == 24

    def test_max_min(self, db):
        assert evaluate(
            comprehension("max", path("n", "v"), ("n", Extent("Nums"))), db
        ) == 4
        assert evaluate(
            comprehension("min", path("n", "v"), ("n", Extent("Nums"))), db
        ) == 1

    def test_quantifiers(self, db):
        all_comp = comprehension(
            "all", BinOp(">", path("n", "v"), const(0)), ("n", Extent("Nums"))
        )
        some_comp = comprehension(
            "some", BinOp(">", path("n", "v"), const(3)), ("n", Extent("Nums"))
        )
        assert evaluate(all_comp, db) is True
        assert evaluate(some_comp, db) is True
        assert evaluate(
            comprehension("all", const(False), ("n", Extent("Nums"))), db
        ) is False

    def test_empty_domain_yields_zero(self, db):
        comp = comprehension("sum", const(1), ("x", Zero("set")))
        assert evaluate(comp, db) == 0
        assert evaluate(
            comprehension("all", const(False), ("x", Zero("set"))), db
        ) is True

    def test_generator_over_null_is_empty(self, db):
        comp = comprehension("sum", const(1), ("x", Null()))
        assert evaluate(comp, db) == 0

    def test_null_filter_counts_as_false(self, db):
        comp = comprehension("sum", const(1), ("n", Extent("Nums")), Null())
        assert evaluate(comp, db) == 0

    def test_null_head_skipped_in_aggregate(self, db):
        comp = comprehension(
            "sum",
            If(BinOp("==", path("n", "v"), const(2)), Null(), path("n", "v")),
            ("n", Extent("Nums")),
        )
        assert evaluate(comp, db) == 8  # 1 + 3 + 4; the NULL is skipped

    def test_null_kept_in_set(self, db):
        comp = comprehension(
            "set",
            If(BinOp("==", path("n", "v"), const(2)), Null(), path("n", "v")),
            ("n", Extent("Nums")),
        )
        assert evaluate(comp, db) == SetValue([1, NULL, 3, 4])

    def test_nested_generators(self, db):
        comp = comprehension(
            "sum", var("i"), ("p", Extent("Pairs")), ("i", path("p", "items"))
        )
        assert evaluate(comp, db) == 60

    def test_dependent_generator_with_empty_inner(self, db):
        comp = comprehension(
            "set", path("p", "k"), ("p", Extent("Pairs")), ("i", path("p", "items"))
        )
        # k=2 has no items, so it does not appear.
        assert evaluate(comp, db) == SetValue([1, 3])

    def test_nested_comprehension_in_head(self, db):
        comp = comprehension(
            "set",
            record(
                k=path("p", "k"),
                total=comprehension("sum", var("i"), ("i", path("p", "items"))),
            ),
            ("p", Extent("Pairs")),
        )
        assert evaluate(comp, db) == SetValue(
            [Record(k=1, total=30), Record(k=2, total=0), Record(k=3, total=30)]
        )

    def test_avg(self, db):
        comp = comprehension("avg", path("n", "v"), ("n", Extent("Nums")))
        assert evaluate(comp, db) == 2.5

    def test_avg_of_empty_is_null(self, db):
        comp = comprehension("avg", var("x"), ("x", Zero("set")))
        assert is_null(evaluate(comp, db))

    def test_bag_counts_duplicates(self, db):
        comp = comprehension(
            "bag", BinOp("*", const(0), path("n", "v")), ("n", Extent("Nums"))
        )
        assert evaluate(comp, db) == BagValue([0, 0, 0, 0])

    def test_non_collection_domain_fails(self, db):
        comp = comprehension("sum", var("x"), ("x", const(3)))
        with pytest.raises(EvaluationError, match="not a collection"):
            evaluate(comp, db)

    def test_non_boolean_filter_fails(self, db):
        comp = comprehension("sum", const(1), ("n", Extent("Nums")), const(3))
        with pytest.raises(EvaluationError, match="not a boolean"):
            evaluate(comp, db)


class TestStepCounting:
    def test_steps_count_generator_iterations(self, db):
        evaluator = Evaluator(db)
        comp = comprehension(
            "sum",
            comprehension("sum", const(1), ("m", Extent("Nums"))),
            ("n", Extent("Nums")),
        )
        assert evaluator.evaluate(comp) == 16
        # 4 outer iterations + 4*4 inner iterations.
        assert evaluator.steps == 20
