"""Error-path tests: every layer must fail loudly and helpfully, never
silently produce wrong answers."""

from __future__ import annotations

import doctest

import pytest

from repro.calculus.evaluator import EvaluationError, evaluate
from repro.calculus.terms import (
    Comprehension,
    Extent,
    Generator,
    Lambda,
    Singleton,
    Var,
    comprehension,
    const,
    var,
)
from repro.core.unnesting import UnnestingError, unnest, unnest_query
from repro.data.database import Database
from repro.data.values import Record


class TestUnnestingErrors:
    def test_comprehension_under_lambda_is_rejected(self):
        """A nested query trapped under a lambda cannot be spliced — the
        translator must refuse rather than silently drop it."""
        inner = comprehension("sum", var("y"), ("y", Var("x")))
        term = Comprehension(
            "set",
            Lambda("x", inner),
            (Generator("e", Extent("X")),),
        )
        with pytest.raises(UnnestingError, match="comprehension survived"):
            unnest(term)

    def test_inner_compile_requires_stream(self):
        from repro.core.unnesting import _Box, _Translator, UnnestingTrace

        translator = _Translator(UnnestingTrace())
        comp = comprehension("sum", const(1), ("x", Extent("X")))
        with pytest.raises(UnnestingError, match="without a stream"):
            translator._compile(comp, plan=None, box=_Box((), "m"))

    def test_unnest_query_accepts_unprepared_input(self):
        """unnest_query must prepare internally — raw nested terms work."""
        from repro.data.datagen import company_database

        db = company_database(8, 3, seed=2)
        inner = comprehension("set", var("x"), ("x", Extent("Employees")))
        term = comprehension("set", var("v"), ("v", inner))
        plan = unnest_query(term)
        from repro.algebra.evaluator import evaluate_plan

        assert evaluate_plan(plan, db) == evaluate(term, db)


class TestEvaluatorErrorMessages:
    def test_unbound_variable_lists_scope(self):
        db = Database()
        with pytest.raises(EvaluationError, match="in scope"):
            evaluate(var("ghost"), db, {"x": 1})

    def test_record_missing_attribute_lists_attributes(self):
        record = Record(name="x")
        with pytest.raises(KeyError, match="attributes are"):
            record["age"]

    def test_extent_error_lists_known_extents(self):
        db = Database()
        db.add_extent("Known", [])
        with pytest.raises(KeyError, match="Known"):
            evaluate(Extent("Other"), db)


class TestOptimizerErrors:
    def test_physical_plan_without_unnesting(self):
        from repro.core.optimizer import CompiledQuery, Optimizer, OptimizerOptions
        from repro.data.datagen import company_database

        db = company_database(5, 2, seed=2)
        compiled = Optimizer(db, OptimizerOptions(unnest=False)).compile_oql(
            "select distinct e from e in Employees"
        )
        with pytest.raises(ValueError, match="unnest=False"):
            compiled.explain(db)

    def test_order_by_on_scalar_result(self):
        from repro.core.optimizer import Optimizer
        from repro.data.datagen import company_database

        db = company_database(5, 2, seed=2)
        compiled = Optimizer(db).compile_oql("count( select e from e in Employees )")
        compiled.order_by = ((var("value"), True),)
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="collection"):
            compiled.execute(db)


class TestErrorTaxonomyContract:
    """run_oql's error contract: whatever is wrong with a query — syntax,
    names, types, runtime values, resource limits — the failure is always a
    QueryError subclass carrying the query source, never a bare builtin."""

    @pytest.fixture(scope="class")
    def db(self):
        from repro.data.datagen import company_database

        return company_database(num_employees=20, num_departments=4, seed=2)

    # Corpus queries each broken a different way: unknown extent, unknown
    # field, ill-typed arithmetic, string/number mixing, division and modulo
    # by zero, syntax garbage, unbound parameter, cross-type quantifier.
    BROKEN = [
        "select e.name from e in Employes",
        "select e from e in Employees where e.nonexistent = 1",
        "select e.name + e.salary from e in Employees",
        "select e from e in Employees where e.name > e.salary",
        "sum( select e.salary / (e.salary - e.salary) from e in Employees )",
        "select e.salary % (e.dno - e.dno) from e in Employees",
        "select e.name from e in Employees where",
        "select from where in",
        "select e from e in Employees where e.dno = :missing",
        "select d from d in Departments where exists e in d.name: e = 1",
    ]

    @pytest.mark.parametrize("source", BROKEN)
    def test_broken_query_raises_query_error(self, db, source):
        from repro.core.pipeline import QueryPipeline
        from repro.errors import QueryError

        with pytest.raises(QueryError) as info:
            QueryPipeline(db).run_oql(source)
        # The taxonomy promise: the error identifies the query...
        assert info.value.source == source
        # ...and str() renders without raising and carries the context tag.
        assert "query=" in str(info.value)

    @pytest.mark.parametrize("source", BROKEN)
    def test_broken_query_raises_query_error_interpreted(self, db, source):
        """The interpreted-expression tier makes the same promise."""
        from repro.core.optimizer import OptimizerOptions
        from repro.core.pipeline import QueryPipeline
        from repro.errors import QueryError

        pipeline = QueryPipeline(db, OptimizerOptions(compiled_exprs=False))
        with pytest.raises(QueryError):
            pipeline.run_oql(source)

    def test_plan_time_failures_have_planning_stage(self, db):
        from repro.core.pipeline import QueryPipeline
        from repro.errors import PlanningError, TypeCheckError, UnknownExtentError

        pipeline = QueryPipeline(db)
        with pytest.raises(UnknownExtentError) as info:
            pipeline.run_oql("select e from e in Nowhere")
        assert isinstance(info.value, PlanningError)
        with pytest.raises(TypeCheckError, match="string"):
            pipeline.run_oql("select e.name + 1 from e in Employees")

    def test_division_by_zero_is_execution_error(self, db):
        from repro.calculus.evaluator import DivisionByZeroError
        from repro.core.pipeline import QueryPipeline
        from repro.errors import ExecutionError

        with pytest.raises(DivisionByZeroError) as info:
            QueryPipeline(db).run_oql(
                "sum( select e.salary / (e.dno - e.dno) "
                "from e in Employees where e.dno = 1 )"
            )
        assert isinstance(info.value, ExecutionError)
        assert info.value.stage == "execute"

    def test_legacy_except_clauses_still_catch(self, db):
        """Multiple inheritance keeps pre-taxonomy handlers working."""
        from repro.core.pipeline import QueryPipeline

        with pytest.raises(KeyError):  # UnknownExtentError is-a KeyError
            QueryPipeline(db).run_oql("select x from x in Missing")
        with pytest.raises(TypeError):  # TypeCheckError subtypes TypeError
            QueryPipeline(db).run_oql("select e.name - 1 from e in Employees")
        with pytest.raises(SyntaxError):  # OQLSyntaxError subtypes SyntaxError
            QueryPipeline(db).run_oql("select ( from")


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.data.values",
            "repro.data.database",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0


class TestStorageErrorPaths:
    def test_save_unencodable_extent(self, tmp_path):
        from repro.data.storage import StorageError, save_database

        db = Database()
        db.add_extent("Weird", [object()])
        with pytest.raises(StorageError):
            save_database(db, tmp_path / "x.json")
