"""Unit tests for the Section 5 simplification rule (Figure 8)."""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import evaluate_plan
from repro.algebra.operators import Map, Nest, OuterJoin, Reduce, operators
from repro.algebra.pretty import plan_signature
from repro.calculus.evaluator import evaluate
from repro.calculus.terms import BinOp, Extent, comprehension, const, path, record, var
from repro.core.simplification import simplification_applies, simplify
from repro.core.unnesting import unnest_query
from repro.data.datagen import company_database


@pytest.fixture(scope="module")
def db():
    return company_database(num_employees=25, num_departments=6, seed=11)


def section5_query(agg: str = "avg"):
    """The paper's Section 5 query in calculus form."""
    inner = comprehension(
        agg,
        path("u", "salary"),
        ("u", Extent("Employees")),
        BinOp(">", path("u", "age"), const(30)),
        BinOp("==", path("e", "dno"), path("u", "dno")),
    )
    return comprehension(
        "set",
        record(E=path("e", "dno"), S=inner),
        ("e", Extent("Employees")),
        BinOp(">", path("e", "age"), const(30)),
    )


class TestFigure8:
    def test_plan_a_shape(self, db):
        plan = unnest_query(section5_query())
        assert plan_signature(plan) == "reduce(nest(outer-join(select(scan), scan)))"

    def test_plan_b_shape(self, db):
        simplified = simplify(unnest_query(section5_query()))
        assert plan_signature(simplified) == "reduce(nest(map(select(scan))))"

    def test_self_outer_join_eliminated(self, db):
        simplified = simplify(unnest_query(section5_query()))
        assert not any(isinstance(op, OuterJoin) for op in operators(simplified))
        assert any(isinstance(op, Map) for op in operators(simplified))

    def test_semantics_preserved(self, db):
        query = section5_query()
        reference = evaluate(query, db)
        plan = unnest_query(query)
        assert evaluate_plan(plan, db) == reference
        assert evaluate_plan(simplify(plan), db) == reference

    @pytest.mark.parametrize("agg", ["sum", "max", "min", "avg"])
    def test_all_aggregates(self, db, agg):
        query = section5_query(agg)
        reference = evaluate(query, db)
        simplified = simplify(unnest_query(query))
        assert simplification_applies(unnest_query(query))
        assert evaluate_plan(simplified, db) == reference

    def test_group_collapses_duplicates(self, db):
        """After simplification one group per key remains; the set reduce
        sees identical output, even though employees share departments."""
        simplified = simplify(unnest_query(section5_query()))
        nest = next(op for op in operators(simplified) if isinstance(op, Nest))
        # A NULL grouping key must still pad to the monoid zero, exactly as
        # in the outer-join form, so the rewrite keeps the key columns as
        # null-test variables.
        assert nest.null_vars == nest.group_by
        assert len(nest.group_by) == 1


class TestNonApplicability:
    def test_different_extents_not_rewritten(self, db):
        """Grouping Employees against Managers is not a self-join."""
        inner = comprehension(
            "sum",
            path("m", "salary"),
            ("m", Extent("Managers")),
            BinOp("==", path("e", "name"), path("m", "name")),
        )
        query = comprehension(
            "set", record(E=path("e", "dno"), S=inner), ("e", Extent("Employees"))
        )
        plan = unnest_query(query)
        assert not simplification_applies(plan)
        assert evaluate_plan(simplify(plan), db) == evaluate(query, db)

    def test_different_predicates_not_rewritten(self, db):
        """Outer and inner selections disagree → towers are not copies."""
        inner = comprehension(
            "sum",
            path("u", "salary"),
            ("u", Extent("Employees")),
            BinOp(">", path("u", "age"), const(40)),  # inner filters on 40
            BinOp("==", path("e", "dno"), path("u", "dno")),
        )
        query = comprehension(
            "set",
            record(E=path("e", "dno"), S=inner),
            ("e", Extent("Employees")),
            BinOp(">", path("e", "age"), const(30)),  # outer filters on 30
        )
        plan = unnest_query(query)
        assert not simplification_applies(plan)

    def test_nonidempotent_parent_not_rewritten(self, db):
        """A bag-valued parent would lose duplicates — must not rewrite."""
        inner = comprehension(
            "sum",
            path("u", "salary"),
            ("u", Extent("Employees")),
            BinOp("==", path("e", "dno"), path("u", "dno")),
        )
        query = comprehension(
            "bag", record(E=path("e", "dno"), S=inner), ("e", Extent("Employees"))
        )
        plan = unnest_query(query)
        assert not simplification_applies(plan)
        assert evaluate_plan(simplify(plan), db) == evaluate(query, db)

    def test_parent_using_raw_variable_not_rewritten(self, db):
        """If the reduce head needs the whole tuple (not just the grouping
        expression) the rewrite cannot re-express it and must refuse."""
        inner = comprehension(
            "sum",
            path("u", "salary"),
            ("u", Extent("Employees")),
            BinOp("==", path("e", "dno"), path("u", "dno")),
        )
        query = comprehension(
            "set", record(E=var("e"), S=inner), ("e", Extent("Employees"))
        )
        plan = unnest_query(query)
        assert not simplification_applies(plan)
        assert evaluate_plan(simplify(plan), db) == evaluate(query, db)

    def test_non_equality_correlation_not_rewritten(self, db):
        inner = comprehension(
            "sum",
            path("u", "salary"),
            ("u", Extent("Employees")),
            BinOp("<", path("e", "dno"), path("u", "dno")),
        )
        query = comprehension(
            "set", record(E=path("e", "dno"), S=inner), ("e", Extent("Employees"))
        )
        plan = unnest_query(query)
        assert not simplification_applies(plan)
        assert evaluate_plan(simplify(plan), db) == evaluate(query, db)


class TestSimplificationProperty:
    """Hypothesis: across random group-by instances (aggregate × filters ×
    grouping attribute), the rewrite fires and preserves the result."""

    from hypothesis import HealthCheck, given, settings, strategies as st

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        agg=st.sampled_from(["sum", "max", "min", "avg"]),
        group_attr=st.sampled_from(["dno", "age"]),
        agg_attr=st.sampled_from(["salary", "age"]),
        threshold=st.integers(min_value=20, max_value=60),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_random_group_by_instances(
        self, agg, group_attr, agg_attr, threshold, seed
    ):
        from repro.calculus.terms import comprehension

        db = company_database(num_employees=15, num_departments=4, seed=seed)
        inner = comprehension(
            agg,
            path("u", agg_attr),
            ("u", Extent("Employees")),
            BinOp(">", path("u", "age"), const(threshold)),
            BinOp("==", path("e", group_attr), path("u", group_attr)),
        )
        query = comprehension(
            "set",
            record(G=path("e", group_attr), V=inner),
            ("e", Extent("Employees")),
            BinOp(">", path("e", "age"), const(threshold)),
        )
        plan = unnest_query(query)
        assert simplification_applies(plan)
        reference = evaluate(query, db)
        assert evaluate_plan(simplify(plan), db) == reference


class TestMultipleGroupingKeys:
    def test_two_grouping_expressions(self, db):
        inner = comprehension(
            "sum",
            path("u", "salary"),
            ("u", Extent("Employees")),
            BinOp("==", path("e", "dno"), path("u", "dno")),
            BinOp("==", path("e", "age"), path("u", "age")),
        )
        query = comprehension(
            "set",
            record(D=path("e", "dno"), A=path("e", "age"), S=inner),
            ("e", Extent("Employees")),
        )
        plan = unnest_query(query)
        assert simplification_applies(plan)
        assert evaluate_plan(simplify(plan), db) == evaluate(query, db)
