"""Property-based tests (hypothesis): the soundness theorems under fire.

A strategy generates random *well-formed* monoid comprehensions — nested
aggregates, quantifiers, and subqueries over a small schema — plus random
databases, and checks the paper's two theorems empirically:

* normalization is meaning-preserving (Figure 4);
* the unnesting translation is meaning-preserving (Theorem 2) and complete
  (Theorem 1), all the way down to the physical engine.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.algebra.evaluator import evaluate_plan
from repro.calculus.evaluator import evaluate
from repro.calculus.terms import (
    BinOp,
    Comprehension,
    Extent,
    Term,
    comprehension,
    const,
    path,
    record,
    var,
)
from repro.core.normalization import normalize, prepare
from repro.core.unnesting import unnest_query
from repro.data.database import Database
from repro.data.values import Record, SetValue
from repro.engine.planner import PlannerOptions, execute

# ---------------------------------------------------------------------------
# Random databases over a fixed two-extent schema
# ---------------------------------------------------------------------------


@st.composite
def databases(draw):
    """A random database with extents R (with nested kids) and S."""

    def r_record(i):
        num_kids = draw(st.integers(min_value=0, max_value=3))
        kids = SetValue(
            Record(age=draw(st.integers(min_value=0, max_value=9)))
            for _ in range(num_kids)
        )
        return Record(
            a=draw(st.integers(min_value=0, max_value=5)),
            b=draw(st.integers(min_value=0, max_value=5)),
            kids=kids,
        )

    r_size = draw(st.integers(min_value=0, max_value=5))
    s_size = draw(st.integers(min_value=0, max_value=5))
    db = Database()
    db.add_extent("R", [r_record(i).with_field("i", i) for i in range(r_size)])
    db.add_extent(
        "S",
        [
            Record(c=draw(st.integers(min_value=0, max_value=5)), j=j)
            for j in range(s_size)
        ],
    )
    return db


# ---------------------------------------------------------------------------
# Random comprehension terms
# ---------------------------------------------------------------------------

_COMPARE_OPS = ["==", "!=", "<", "<=", ">", ">="]


@st.composite
def comprehensions(draw, depth: int = 2):
    """A random closed, well-typed comprehension over the R/S schema."""
    counter = draw(st.integers(min_value=0, max_value=10_000))
    fresh = iter(f"v{counter}_{i}" for i in range(50))
    return _comprehension(draw, depth, (), fresh)


def _numeric_expr(draw, scope, fresh, depth):
    """A numeric scalar expression over the variables in *scope*."""
    choices = [lambda: const(draw(st.integers(min_value=0, max_value=5)))]
    for name, kind in scope:
        if kind == "R":
            choices.append(lambda n=name: path(n, draw(st.sampled_from(["a", "b"]))))
        elif kind == "S":
            choices.append(lambda n=name: path(n, "c"))
        elif kind == "kid":
            choices.append(lambda n=name: path(n, "age"))
        elif kind == "num":
            choices.append(lambda n=name: var(n))
    if depth > 0 and draw(st.booleans()):
        # nested aggregate as a numeric expression
        return _comprehension(
            draw, depth - 1, scope, fresh, monoids=["sum", "max"]
        )
    return draw(st.sampled_from([c() for c in choices]))


def _predicate(draw, scope, fresh, depth):
    left = _numeric_expr(draw, scope, fresh, 0)
    right = _numeric_expr(draw, scope, fresh, depth)
    op = draw(st.sampled_from(_COMPARE_OPS))
    pred = BinOp(op, left, right)
    if depth > 0 and draw(st.integers(min_value=0, max_value=3)) == 0:
        quantifier = _comprehension(
            draw, depth - 1, scope, fresh, monoids=["all", "some"]
        )
        pred = BinOp(draw(st.sampled_from(["and", "or"])), pred, quantifier)
    return pred


def _generator_domain(draw, scope, fresh, depth):
    kid_sources = [name for name, kind in scope if kind == "R"]
    options = ["R", "S"]
    if kid_sources:
        options.append("kids")
    if depth > 0:
        options.append("subquery")
    choice = draw(st.sampled_from(options))
    if choice == "R":
        return Extent("R"), "R"
    if choice == "S":
        return Extent("S"), "S"
    if choice == "kids":
        return path(draw(st.sampled_from(kid_sources)), "kids"), "kid"
    sub = _comprehension(draw, depth - 1, scope, fresh, monoids=["set"], scalar_head=True)
    # the subquery projects scalars, so its elements are numbers
    return sub, "num"


def _comprehension(draw, depth, scope, fresh, monoids=None, scalar_head=False):
    monoid_name = draw(
        st.sampled_from(monoids or ["set", "sum", "max", "all", "some", "bag"])
    )
    inner_scope = list(scope)
    qualifiers = []
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        domain, kind = _generator_domain(draw, inner_scope, fresh, depth)
        name = next(fresh)
        qualifiers.append((name, domain))
        inner_scope.append((name, kind))
    if draw(st.booleans()):
        qualifiers.append(_predicate(draw, inner_scope, fresh, depth))
    if monoid_name in ("all", "some"):
        head: Term = _predicate(draw, inner_scope, fresh, 0)
    elif (
        monoid_name in ("set", "bag")
        and not scalar_head
        and draw(st.integers(0, 2)) == 0
    ):
        # collection heads may be records (possibly carrying nested
        # aggregates), like the paper's QUERY B/D shapes
        head = record(
            a=_numeric_expr(draw, inner_scope, fresh, depth),
            b=_numeric_expr(draw, inner_scope, fresh, 0),
        )
    else:
        head = _numeric_expr(draw, inner_scope, fresh, depth)
    return comprehension(monoid_name, head, *qualifiers)


# ---------------------------------------------------------------------------
# The theorems
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@_SETTINGS
@given(db=databases(), term=comprehensions())
def test_normalization_preserves_semantics(db, term):
    assert evaluate(normalize(term), db) == evaluate(term, db)


@_SETTINGS
@given(db=databases(), term=comprehensions())
def test_prepare_preserves_semantics(db, term):
    assert evaluate(prepare(term), db) == evaluate(term, db)


@_SETTINGS
@given(db=databases(), term=comprehensions())
def test_unnesting_is_sound(db, term):
    """Theorem 2: the unnested plan computes the comprehension's value."""
    reference = evaluate(term, db)
    plan = unnest_query(term)
    assert evaluate_plan(plan, db) == reference


@_SETTINGS
@given(db=databases(), term=comprehensions())
def test_physical_engines_are_sound(db, term):
    reference = evaluate(term, db)
    plan = unnest_query(term)
    assert execute(plan, db) == reference
    assert execute(plan, db, PlannerOptions(hash_joins=False)) == reference
    assert execute(plan, db, PlannerOptions(merge_joins=True)) == reference


@_SETTINGS
@given(term=comprehensions())
def test_unnesting_is_complete(term):
    """Theorem 1: translation never fails and leaves no comprehension in
    any operator parameter."""
    from repro.algebra.operators import operators
    from repro.calculus.terms import subterms

    plan = unnest_query(term)
    for op in operators(plan):
        for attr in ("pred", "head", "path", "expr"):
            value = getattr(op, attr, None)
            if value is not None:
                assert not any(
                    isinstance(t, Comprehension) for t in subterms(value)
                )


@_SETTINGS
@given(db=databases(), term=comprehensions())
def test_normalization_idempotent(db, term):
    once = normalize(term)
    assert normalize(once) == once


@_SETTINGS
@given(db=databases(), term=comprehensions())
def test_full_optimizer_pipeline_sound(db, term):
    from repro.core.optimizer import Optimizer

    reference = evaluate(term, db)
    compiled = Optimizer(db).compile_term(term)
    assert compiled.execute(db) == reference
