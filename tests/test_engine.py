"""Unit tests for the physical engine: operator algorithms, the planner's
algorithm assignment, EXPLAIN output, and row accounting."""

from __future__ import annotations

import pytest

from repro.algebra.operators import (
    Join,
    Nest,
    OuterJoin,
    Reduce,
    Scan,
    Select,
    Unnest,
)
from repro.calculus.terms import BinOp, Const, comprehension, const, path, var
from repro.data.database import Database
from repro.data.values import Record, SetValue
from repro.engine.planner import (
    PlannerOptions,
    execute,
    plan_physical,
    split_equi_conjuncts,
)
from repro.engine.physical import (
    PHashJoin,
    PHashNest,
    PNestedLoopJoin,
    PReduce,
    PScan,
    PSelect,
)


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.add_extent(
        "R", [Record(k=i, v=i * 10) for i in range(6)]
    )
    database.add_extent(
        "S", [Record(k=i % 3, w=i) for i in range(6)]
    )
    return database


def join_plan(pred):
    return Reduce(
        Join(Scan("R", "r"), Scan("S", "s"), pred),
        "sum",
        const(1),
    )


class TestEquiKeyExtraction:
    def test_simple_equality(self):
        pred = BinOp("==", path("r", "k"), path("s", "k"))
        keys, residual = split_equi_conjuncts(pred, ("r",), ("s",))
        assert len(keys) == 1 and residual == []

    def test_reversed_sides(self):
        pred = BinOp("==", path("s", "k"), path("r", "k"))
        keys, residual = split_equi_conjuncts(pred, ("r",), ("s",))
        assert len(keys) == 1
        left_key, right_key = keys[0]
        assert left_key == path("r", "k") and right_key == path("s", "k")

    def test_mixed_conjuncts(self):
        pred = BinOp(
            "and",
            BinOp("==", path("r", "k"), path("s", "k")),
            BinOp("<", path("r", "v"), path("s", "w")),
        )
        keys, residual = split_equi_conjuncts(pred, ("r",), ("s",))
        assert len(keys) == 1 and len(residual) == 1

    def test_non_equality_not_extracted(self):
        pred = BinOp("<", path("r", "k"), path("s", "k"))
        keys, residual = split_equi_conjuncts(pred, ("r",), ("s",))
        assert keys == [] and len(residual) == 1

    def test_same_side_equality_not_extracted(self):
        pred = BinOp("==", path("r", "k"), path("r", "v"))
        keys, residual = split_equi_conjuncts(pred, ("r",), ("s",))
        assert keys == [] and len(residual) == 1

    def test_constant_equality_not_extracted(self):
        pred = BinOp("==", path("r", "k"), const(3))
        keys, residual = split_equi_conjuncts(pred, ("r",), ("s",))
        assert keys == []


class TestAlgorithmAssignment:
    def test_equi_join_gets_hash_join(self, db):
        plan = join_plan(BinOp("==", path("r", "k"), path("s", "k")))
        physical = plan_physical(plan, db)
        assert isinstance(physical.child, PHashJoin)

    def test_theta_join_gets_nested_loop(self, db):
        plan = join_plan(BinOp("<", path("r", "k"), path("s", "k")))
        physical = plan_physical(plan, db)
        assert isinstance(physical.child, PNestedLoopJoin)

    def test_hash_joins_disabled(self, db):
        plan = join_plan(BinOp("==", path("r", "k"), path("s", "k")))
        physical = plan_physical(plan, db, PlannerOptions(hash_joins=False))
        assert isinstance(physical.child, PNestedLoopJoin)

    def test_nest_gets_hash_nest(self, db):
        plan = Reduce(
            Nest(Scan("S", "s"), "sum", path("s", "w"), ("s",), (), "m"),
            "set",
            var("m"),
        )
        physical = plan_physical(plan, db)
        assert isinstance(physical.child, PHashNest)


class TestExecution:
    def test_hash_and_nl_agree_inner(self, db):
        plan = join_plan(BinOp("==", path("r", "k"), path("s", "k")))
        hashed = execute(plan, db)
        looped = execute(plan, db, PlannerOptions(hash_joins=False))
        assert hashed == looped == 6  # keys 0,1,2 each match twice

    def test_hash_and_nl_agree_outer(self, db):
        plan = Reduce(
            OuterJoin(
                Scan("R", "r"), Scan("S", "s"),
                BinOp("==", path("r", "k"), path("s", "k")),
            ),
            "sum",
            const(1),
        )
        hashed = execute(plan, db)
        looped = execute(plan, db, PlannerOptions(hash_joins=False))
        # 6 matches + 3 padded rows for r.k in {3,4,5}
        assert hashed == looped == 9

    def test_residual_predicate_applied(self, db):
        pred = BinOp(
            "and",
            BinOp("==", path("r", "k"), path("s", "k")),
            BinOp(">", path("s", "w"), const(2)),
        )
        assert execute(join_plan(pred), db) == execute(
            join_plan(pred), db, PlannerOptions(hash_joins=False)
        )

    def test_unnest(self, db):
        database = Database()
        database.add_extent(
            "T", [Record(xs=SetValue([1, 2])), Record(xs=SetValue([3]))]
        )
        plan = Reduce(
            Unnest(Scan("T", "t"), path("t", "xs"), "x"), "sum", var("x")
        )
        assert execute(plan, database) == 6

    def test_reduce_short_circuits_some(self, db):
        plan = Reduce(
            Scan("R", "r"), "some", BinOp(">=", path("r", "k"), const(0))
        )
        physical = plan_physical(plan, db, PlannerOptions(batched_exec=False))
        assert physical.value() is True
        # the predicate holds for every row, so the very first row decides
        scan = physical.children()[0]
        assert scan.rows_produced == 1
        # the batch path still short-circuits, at chunk granularity: it
        # overshoots by at most one chunk instead of reading the extent.
        batched = plan_physical(plan, db, PlannerOptions(batch_size=2))
        assert batched.value() is True
        assert batched.children()[0].rows_produced == 2

    def test_rows_produced_accounting(self, db):
        physical = plan_physical(
            Reduce(
                Select(Scan("R", "r"), BinOp("<", path("r", "k"), const(3))),
                "sum",
                const(1),
            ),
            db,
        )
        assert physical.value() == 3
        select = physical.children()[0]
        assert isinstance(select, PSelect)
        assert select.rows_produced == 3
        assert select.children()[0].rows_produced == 6
        # 6 (scan) + 3 (select) + 1 (the root's scalar result row)
        assert physical.total_rows() == 10


class TestMergeJoin:
    def test_inner_agrees_with_hash(self, db):
        plan = join_plan(BinOp("==", path("r", "k"), path("s", "k")))
        merged = execute(plan, db, PlannerOptions(merge_joins=True))
        assert merged == execute(plan, db)

    def test_outer_pads_unmatched(self, db):
        plan = Reduce(
            OuterJoin(
                Scan("R", "r"), Scan("S", "s"),
                BinOp("==", path("r", "k"), path("s", "k")),
            ),
            "sum",
            const(1),
        )
        merged = execute(plan, db, PlannerOptions(merge_joins=True))
        assert merged == execute(plan, db) == 9

    def test_duplicate_key_runs_cross_product(self):
        database = Database()
        database.add_extent("L", [Record(k=1, a=i) for i in range(3)])
        database.add_extent("Rt", [Record(k=1, b=i) for i in range(4)])
        plan = Reduce(
            Join(Scan("L", "l"), Scan("Rt", "r"),
                 BinOp("==", path("l", "k"), path("r", "k"))),
            "sum",
            const(1),
        )
        assert execute(plan, database, PlannerOptions(merge_joins=True)) == 12

    def test_residual_predicate(self, db):
        pred = BinOp(
            "and",
            BinOp("==", path("r", "k"), path("s", "k")),
            BinOp(">", path("s", "w"), const(2)),
        )
        plan = join_plan(pred)
        assert execute(plan, db, PlannerOptions(merge_joins=True)) == execute(
            plan, db
        )

    def test_multi_key_joins_fall_back_to_hash(self, db):
        from repro.engine.physical import PHashJoin

        pred = BinOp(
            "and",
            BinOp("==", path("r", "k"), path("s", "k")),
            BinOp("==", path("r", "v"), path("s", "w")),
        )
        physical = plan_physical(
            join_plan(pred), db, PlannerOptions(merge_joins=True)
        )
        assert isinstance(physical.children()[0], PHashJoin)

    def test_planner_selects_merge_join(self, db):
        from repro.engine.physical import PMergeJoin

        plan = join_plan(BinOp("==", path("r", "k"), path("s", "k")))
        physical = plan_physical(plan, db, PlannerOptions(merge_joins=True))
        assert isinstance(physical.children()[0], PMergeJoin)
        assert "MergeJoin" in physical.explain()

    def test_corpus_queries_under_merge_joins(self):
        from corpus import corpus_by_name
        from repro.core.optimizer import Optimizer, OptimizerOptions
        from repro.data.datagen import university_database
        from repro.engine.planner import plan_physical as _pp

        db = university_database(15, 8, seed=4)
        query = corpus_by_name("query_e")
        reference = Optimizer(db).run_oql(query.oql)
        compiled = Optimizer(db).compile_oql(query.oql)
        physical = _pp(
            compiled.optimized, db,
            PlannerOptions(merge_joins=True, hash_joins=False),
        )
        assert physical.value() == reference


class TestExplain:
    def test_explain_mentions_algorithms(self, db):
        plan = join_plan(BinOp("==", path("r", "k"), path("s", "k")))
        text = plan_physical(plan, db).explain()
        assert "HashJoin" in text
        assert "Scan(r <- R)" in text
        assert text.splitlines()[0].startswith("Reduce")

    def test_explain_indents_children(self, db):
        plan = join_plan(Const(True))
        lines = plan_physical(plan, db).explain().splitlines()
        assert lines[1].startswith("  ")
        assert lines[2].startswith("    ")


class TestCostModel:
    def test_scan_uses_database_statistics(self, db):
        from repro.engine.cost import CostModel

        model = CostModel(db)
        assert model.cardinality(Scan("R", "r")) == 6.0

    def test_default_extent_size_without_db(self):
        from repro.engine.cost import CostModel

        model = CostModel()
        assert model.cardinality(Scan("R", "r")) == 1000.0

    def test_selection_reduces_cardinality(self, db):
        from repro.engine.cost import CostModel

        model = CostModel(db)
        scan = Scan("R", "r")
        select = Select(scan, BinOp("==", path("r", "k"), const(1)))
        assert model.cardinality(select) < model.cardinality(scan)

    def test_equality_more_selective_than_comparison(self, db):
        from repro.engine.cost import CostModel

        model = CostModel(db)
        eq = model.selectivity(BinOp("==", var("a"), var("b")))
        lt = model.selectivity(BinOp("<", var("a"), var("b")))
        assert eq < lt

    def test_hash_join_cheaper_than_nested_loop(self, db):
        from repro.engine.cost import CostModel

        model = CostModel(db)
        eq_join = Join(
            Scan("R", "r"), Scan("S", "s"),
            BinOp("==", path("r", "k"), path("s", "k")),
        )
        theta_join = Join(
            Scan("R", "r"), Scan("S", "s"),
            BinOp("<", path("r", "k"), path("s", "k")),
        )
        assert model.cost(eq_join) < model.cost(theta_join)

    def test_outer_join_keeps_left_cardinality(self, db):
        from repro.engine.cost import CostModel

        model = CostModel(db)
        join = OuterJoin(Scan("R", "r"), Scan("S", "s"), Const(False))
        assert model.cardinality(join) >= model.cardinality(Scan("R", "r"))

    def test_nested_comprehension_raises_cost(self, db):
        from repro.calculus.terms import Extent
        from repro.engine.cost import CostModel

        model = CostModel(db)
        cheap = Reduce(Scan("R", "r"), "sum", path("r", "v"))
        nested_head = comprehension("sum", path("s2", "w"), ("s2", Extent("S")))
        pricey = Reduce(Scan("R", "r"), "sum", nested_head)
        assert model.cost(pricey) > model.cost(cheap)
