"""Unit tests for the term and plan pretty-printers (the paper's notation)."""

from __future__ import annotations

from repro.algebra.operators import Nest, OuterJoin, Reduce, Scan
from repro.algebra.pretty import pretty_plan
from repro.calculus.pretty import pretty
from repro.calculus.terms import (
    Apply,
    BinOp,
    Extent,
    If,
    IsNull,
    Lambda,
    Let,
    Merge,
    Not,
    Null,
    Singleton,
    Zero,
    comprehension,
    const,
    path,
    record,
    var,
)


class TestTermPretty:
    def test_query_a_notation(self):
        comp = comprehension(
            "set",
            record(E=path("e", "name"), C=path("c", "name")),
            ("e", Extent("Employees")),
            ("c", path("e", "children")),
        )
        assert pretty(comp) == (
            "{ ( C=c.name, E=e.name ) | e <- Employees, c <- e.children }"
        )

    def test_monoid_symbols(self):
        gen = ("x", Extent("X"))
        assert pretty(comprehension("sum", const(1), gen)) == "+{ 1 | x <- X }"
        assert pretty(comprehension("all", const(True), gen)) == "&{ true | x <- X }"
        assert pretty(comprehension("some", const(True), gen)) == "|{ true | x <- X }"
        assert pretty(comprehension("max", var("x"), gen)) == "max{ x | x <- X }"

    def test_equality_prints_as_single_equals(self):
        assert pretty(BinOp("==", var("a"), var("b"))) == "a = b"

    def test_string_and_bool_literals(self):
        assert pretty(const("DB")) == '"DB"'
        assert pretty(const(True)) == "true"
        assert pretty(const(False)) == "false"

    def test_null(self):
        assert pretty(Null()) == "NULL"
        assert pretty(IsNull(var("x"))) == "x is NULL"

    def test_collection_constructors(self):
        assert pretty(Zero("set")) == "{}"
        assert pretty(Zero("bag")) == "{{}}"
        assert pretty(Zero("sum")) == "zero[sum]"
        assert pretty(Singleton("set", const(1))) == "{ 1 }"
        assert pretty(Merge("set", var("a"), var("b"))) == "a U b"

    def test_nested_operands_parenthesized(self):
        term = BinOp("*", BinOp("+", var("a"), var("b")), var("c"))
        assert pretty(term) == "(a + b) * c"

    def test_lambda_apply_let_if(self):
        assert pretty(Lambda("x", var("x"))) == "\\x. x"
        assert pretty(Apply(var("f"), const(1))) == "f(1)"
        assert pretty(Let("x", const(1), var("x"))) == "let x = 1 in x"
        assert (
            pretty(If(var("p"), const(1), const(2))) == "if p then 1 else 2"
        )
        assert pretty(Not(var("p"))) == "not p"

    def test_empty_qualifier_list(self):
        assert pretty(comprehension("sum", const(1))) == "+{ 1 | }"


class TestPlanPretty:
    def test_figure_1b_rendering(self):
        plan = Reduce(
            Nest(
                OuterJoin(
                    Scan("Departments", "d"),
                    Scan("Employees", "e"),
                    BinOp("==", path("e", "dno"), path("d", "dno")),
                ),
                "set",
                var("e"),
                ("d",),
                ("e",),
                "m",
            ),
            "set",
            record(D=var("d"), E=var("m")),
        )
        text = pretty_plan(plan)
        lines = text.splitlines()
        assert lines[0] == "reduce[U / ( D=d, E=m )]"
        assert lines[1].strip().startswith("nest[U / m=e group_by(d) nulls(e)]")
        assert lines[2].strip().startswith("outer-join[e.dno = d.dno]")
        assert lines[3].strip() == "scan[d <- Departments]"
        assert lines[4].strip() == "scan[e <- Employees]"

    def test_predicates_shown_when_nontrivial(self):
        from repro.calculus.terms import Const

        plan = Reduce(Scan("X", "x"), "sum", const(1), BinOp(">", var("x"), const(2)))
        assert "where x > 2" in pretty_plan(plan)
        plan_no_pred = Reduce(Scan("X", "x"), "sum", const(1))
        assert "where" not in pretty_plan(plan_no_pred)
