"""Unit tests for the OQL front-end: lexer, parser, and translator."""

from __future__ import annotations

import pytest

from repro.calculus.evaluator import evaluate
from repro.calculus.terms import (
    BinOp,
    Comprehension,
    Const,
    Extent,
    Not,
    Null,
    Proj,
    RecordCons,
    Var,
)
from repro.data.datagen import company_database
from repro.oql.ast import (
    Aggregate,
    BinaryOp,
    Exists,
    ForAll,
    InCollection,
    Literal,
    Name,
    Path,
    Select,
    Struct,
    UnaryOp,
)
from repro.oql.lexer import OQLSyntaxError, tokenize
from repro.oql.parser import parse
from repro.oql.translator import TranslationError, parse_and_translate, translate


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Distinct fRoM")
        assert [(t.kind, t.value) for t in tokens[:-1]] == [
            ("keyword", "select"),
            ("keyword", "distinct"),
            ("keyword", "from"),
        ]

    def test_identifiers_case_sensitive(self):
        tokens = tokenize("Employees employees")
        assert tokens[0].value == "Employees"
        assert tokens[1].value == "employees"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert (tokens[0].kind, tokens[0].value) == ("int", "42")
        assert (tokens[1].kind, tokens[1].value) == ("float", "3.14")

    def test_string_literal(self):
        tokens = tokenize('"DB title"')
        assert tokens[0].kind == "string"
        assert tokens[0].value == "DB title"

    def test_unterminated_string(self):
        with pytest.raises(OQLSyntaxError, match="unterminated"):
            tokenize('"oops')

    def test_symbols_longest_match(self):
        tokens = tokenize("<= >= != <>")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "!=", "!="]

    def test_comments_skipped(self):
        tokens = tokenize("select -- a comment\n 1")
        assert [t.kind for t in tokens] == ["keyword", "int", "eof"]

    def test_unexpected_character(self):
        with pytest.raises(OQLSyntaxError, match="unexpected character"):
            tokenize("select @")

    def test_error_carries_line_and_column(self):
        with pytest.raises(OQLSyntaxError, match="line 2"):
            tokenize("select\n   @")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParser:
    def test_simple_select(self):
        node = parse("select distinct e.name from e in Employees")
        assert isinstance(node, Select)
        assert node.distinct
        assert node.from_clauses[0].var == "e"
        assert node.from_clauses[0].domain == Name("Employees")
        assert node.items[0].expr == Path(Name("e"), "name")

    def test_sql_style_from(self):
        node = parse("select e.name from Employees e")
        assert node.from_clauses[0].var == "e"
        assert node.from_clauses[0].domain == Name("Employees")

    def test_from_with_as(self):
        node = parse("select e.name from Employees as e")
        assert node.from_clauses[0].var == "e"

    def test_multiple_from_clauses(self):
        node = parse("select 1 from e in Employees, c in e.children")
        assert len(node.from_clauses) == 2
        assert node.from_clauses[1].domain == Path(Name("e"), "children")

    def test_where(self):
        node = parse("select e from e in Employees where e.age > 30")
        assert node.where == BinaryOp(">", Path(Name("e"), "age"), Literal(30))

    def test_operator_precedence(self):
        node = parse("select e from e in X where a = 1 and b = 2 or c = 3")
        assert isinstance(node.where, BinaryOp) and node.where.op == "or"
        assert node.where.left.op == "and"

    def test_arithmetic_precedence(self):
        node = parse("select 1 + 2 * 3 from e in X")
        expr = node.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesized(self):
        node = parse("select (1 + 2) * 3 from e in X")
        assert node.items[0].expr.op == "*"

    def test_unary_minus(self):
        node = parse("select -e.age from e in X")
        assert node.items[0].expr == UnaryOp("-", Path(Name("e"), "age"))

    def test_not(self):
        node = parse("select e from e in X where not e.flag")
        assert node.where == UnaryOp("not", Path(Name("e"), "flag"))

    def test_struct(self):
        node = parse("select struct( A: 1, B: e.name ) from e in X")
        assert node.items[0].expr == Struct(
            (("A", Literal(1)), ("B", Path(Name("e"), "name")))
        )

    def test_exists_quantifier(self):
        node = parse("select e from e in X where exists c in e.kids: c.age > 2")
        where = node.where
        assert isinstance(where, Exists)
        assert where.var == "c"
        assert where.domain == Path(Name("e"), "kids")

    def test_exists_nonempty_form(self):
        node = parse("select e from e in X where exists( select k from k in e.kids )")
        assert isinstance(node.where, Exists)
        assert node.where.predicate == Literal(True)

    def test_forall_quantifier(self):
        node = parse("select e from e in X where for all c in e.kids: c.age > 2")
        assert isinstance(node.where, ForAll)

    def test_membership(self):
        node = parse("select e from e in X where e.name in ( select n from n in Y )")
        assert isinstance(node.where, InCollection)

    def test_aggregates(self):
        for fn in ("count", "sum", "avg", "max", "min"):
            node = parse(f"select {fn}( select e.v from e in X ) from d in D")
            assert isinstance(node.items[0].expr, Aggregate)
            assert node.items[0].expr.function == fn

    def test_group_by_and_having(self):
        node = parse(
            "select e.dno, count(e) from Employees e group by e.dno "
            "having count(e) > 1"
        )
        assert node.group_by == (Path(Name("e"), "dno"),)
        assert node.having is not None

    def test_alias(self):
        node = parse("select e.dno as department from e in X")
        assert node.items[0].alias == "department"

    def test_nested_select_as_expression(self):
        node = parse("select ( select c from c in e.kids ) from e in X")
        assert isinstance(node.items[0].expr, Select)

    def test_literals(self):
        node = parse("select struct(A: true, B: false, C: nil) from e in X")
        fields = dict(node.items[0].expr.fields)
        assert fields["A"] == Literal(True)
        assert fields["B"] == Literal(False)
        assert fields["C"] == Literal(None)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(OQLSyntaxError, match="trailing"):
            parse("select e from e in X extra")

    def test_missing_from_rejected(self):
        with pytest.raises(OQLSyntaxError, match="expected keyword 'from'"):
            parse("select e")

    def test_top_level_expression(self):
        node = parse("1 + 2")
        assert node == BinaryOp("+", Literal(1), Literal(2))


class TestTranslator:
    def test_select_distinct_is_set(self):
        term = parse_and_translate("select distinct e from e in Employees")
        assert isinstance(term, Comprehension)
        assert term.monoid_name == "set"

    def test_select_plain_is_bag(self):
        term = parse_and_translate("select e from e in Employees")
        assert term.monoid_name == "bag"

    def test_struct_becomes_record(self):
        term = parse_and_translate("select distinct struct(N: e.name) from e in Employees")
        assert isinstance(term.head, RecordCons)

    def test_multi_item_projection_gets_names(self):
        term = parse_and_translate(
            "select distinct e.dno, e.name as who, count(select c from c in e.children) "
            "from e in Employees"
        )
        names = [n for n, _ in term.head.fields]
        assert names == ["dno", "who", "count"]

    def test_bound_name_is_var(self):
        term = parse_and_translate("select distinct e from e in Employees")
        assert term.head == Var("e")
        assert term.generators()[0].domain == Extent("Employees")

    def test_unknown_name_with_schema_rejected(self):
        from repro.errors import UnknownExtentError

        db = company_database(5, 2)
        with pytest.raises(UnknownExtentError, match="unknown name"):
            parse_and_translate("select distinct x from e in Employees", db.schema)

    def test_exists_becomes_some(self):
        term = parse_and_translate(
            "select distinct e from e in Employees where exists c in e.children: true"
        )
        pred = term.filters()[0].pred
        assert isinstance(pred, Comprehension) and pred.monoid_name == "some"

    def test_forall_becomes_all(self):
        term = parse_and_translate(
            "select distinct e from e in Employees "
            "where for all c in e.children: c.age > 1"
        )
        pred = term.filters()[0].pred
        assert isinstance(pred, Comprehension) and pred.monoid_name == "all"

    def test_membership_becomes_some_equality(self):
        term = parse_and_translate(
            "select distinct e from e in Employees "
            "where e.dno in ( select d.dno from d in Departments )"
        )
        pred = term.filters()[0].pred
        assert pred.monoid_name == "some"
        assert isinstance(pred.head, BinOp) and pred.head.op == "=="

    def test_count_fuses_into_sum_of_ones(self):
        term = parse_and_translate("count( select e from e in Employees )")
        assert term.monoid_name == "sum"
        assert term.head == Const(1)

    def test_aggregate_over_path(self):
        term = parse_and_translate(
            "select distinct sum(e.children) as k from e in Employees"
        )
        # sum over a path wraps the path in a generator
        inner = term.head.fields[0][1]
        assert inner.monoid_name == "sum"

    def test_avg_maps_to_avg_monoid(self):
        term = parse_and_translate("avg( select e.age from e in Employees )")
        assert term.monoid_name == "avg"

    def test_nil_is_null(self):
        term = parse_and_translate("select distinct nil from e in Employees")
        assert term.head == Null()

    def test_negation(self):
        term = parse_and_translate(
            "select distinct e from e in Employees where not (e.age > 3)"
        )
        assert isinstance(term.filters()[0].pred, Not)

    def test_unary_minus(self):
        term = parse_and_translate("select distinct -e.age from e in Employees")
        assert term.head == BinOp("-", Const(0), Proj(Var("e"), "age"))

    def test_group_by_shape_matches_paper(self):
        """Section 5: the group-by query translates to the implicitly
        nested form with a correlated avg comprehension."""
        term = parse_and_translate(
            "select distinct e.dno, avg(e.salary) as S from Employees e "
            "where e.age > 30 group by e.dno"
        )
        assert term.monoid_name == "set"
        avg_comp = term.head.fields[1][1]
        assert isinstance(avg_comp, Comprehension)
        assert avg_comp.monoid_name == "avg"
        # the inner comprehension re-ranges over Employees and correlates
        # on dno equality
        assert avg_comp.generators()[0].domain == Extent("Employees")

    def test_having_without_group_by_rejected(self):
        with pytest.raises(TranslationError, match="HAVING"):
            parse_and_translate(
                "select e from e in Employees having count(e) > 1"
            )

    def test_group_by_execution(self):
        db = company_database(20, 4)
        term = parse_and_translate(
            "select e.dno, count(e) as n from Employees e group by e.dno",
            db.schema,
        )
        result = evaluate(term, db)
        total = sum(record["n"] for record in result)
        assert total == db.cardinality("Employees")
