"""Tests for class inheritance (extent inclusion) and named views
(``define name as query``) — OODB features layered on the paper's core."""

from __future__ import annotations

import pytest

from repro.core.optimizer import Optimizer
from repro.data.database import Database
from repro.data.schema import FLOAT, INT, STRING, Schema
from repro.data.values import Record, SetValue
from repro.oql.ast import Define
from repro.oql.parser import parse_statement
from repro.oql.translator import parse_and_translate


@pytest.fixture()
def hierarchy_db() -> Database:
    schema = Schema()
    schema.define_class("Person", name=STRING, age=INT)
    schema.define_class("Employee", extends="Person", salary=FLOAT, dno=INT)
    schema.define_class("Manager", extends="Employee", bonus=FLOAT)
    schema.define_extent("Persons", "Person")
    schema.define_extent("Employees", "Employee")
    schema.define_extent("Managers", "Manager")
    db = Database(schema)
    db.add_extent("Persons", [Record(name="civ1", age=30)])
    db.add_extent(
        "Employees",
        [Record(name="emp1", age=40, salary=50000.0, dno=1)],
    )
    db.add_extent(
        "Managers",
        [Record(name="mgr1", age=50, salary=90000.0, dno=1, bonus=10000.0)],
    )
    return db


class TestInheritance:
    def test_attribute_inheritance(self):
        schema = Schema()
        schema.define_class("Person", name=STRING, age=INT)
        employee = schema.define_class("Employee", extends="Person", salary=FLOAT)
        assert employee.has_attribute("name")
        assert employee.has_attribute("salary")

    def test_subclass_relation(self, hierarchy_db):
        schema = hierarchy_db.schema
        assert schema.is_subclass("Manager", "Person")
        assert schema.is_subclass("Employee", "Employee")
        assert not schema.is_subclass("Person", "Employee")
        assert schema.subclasses("Person") == ("Employee", "Manager", "Person")

    def test_extent_inclusion(self, hierarchy_db):
        assert len(hierarchy_db.extent("Persons")) == 3
        assert len(hierarchy_db.extent("Employees")) == 2
        assert len(hierarchy_db.extent("Managers")) == 1

    def test_query_over_superclass_extent(self, hierarchy_db):
        result = Optimizer(hierarchy_db).run_oql(
            "select distinct p.name from p in Persons where p.age >= 40"
        )
        assert result == SetValue(["emp1", "mgr1"])

    def test_cardinality_reflects_inclusion(self, hierarchy_db):
        assert hierarchy_db.cardinality("Persons") == 3

    def test_cache_invalidated_on_update(self, hierarchy_db):
        assert len(hierarchy_db.extent("Persons")) == 3
        hierarchy_db.add_extent(
            "Managers",
            [
                Record(name=f"mgr{i}", age=50, salary=1.0, dno=1, bonus=0.0)
                for i in range(3)
            ],
        )
        assert len(hierarchy_db.extent("Persons")) == 5

    def test_flat_schema_unaffected(self):
        db = Database()
        db.add_extent("A", [1, 2])
        assert len(db.extent("A")) == 2

    def test_nested_query_through_hierarchy(self, hierarchy_db):
        """Aggregates range over the inclusive extent."""
        result = Optimizer(hierarchy_db).run_oql(
            "max( select e.salary from e in Employees )"
        )
        assert result == 90000.0


class TestViews:
    @pytest.fixture()
    def optimizer(self, hierarchy_db) -> Optimizer:
        return Optimizer(hierarchy_db)

    def test_parse_statement_define(self):
        statement = parse_statement("define V as select distinct p from p in Persons")
        assert isinstance(statement, Define)
        assert statement.name == "V"

    def test_parse_statement_plain_query(self):
        statement = parse_statement("select distinct p from p in Persons")
        assert not isinstance(statement, Define)

    def test_view_inlined(self, optimizer, hierarchy_db):
        optimizer.define_view(
            "define Adults as select distinct p from p in Persons where p.age >= 40"
        )
        result = optimizer.run_oql("select distinct a.name from a in Adults")
        assert result == SetValue(["emp1", "mgr1"])

    def test_view_over_view(self, optimizer):
        optimizer.define_view(
            "define Adults as select distinct p from p in Persons where p.age >= 40"
        )
        optimizer.define_view(
            "define OldAdults as select distinct a from a in Adults where a.age >= 50"
        )
        result = optimizer.run_oql("count( select o from o in OldAdults )")
        assert result == 1

    def test_view_participates_in_unnesting(self, optimizer):
        """A nested query over a view goes through the same pipeline."""
        optimizer.define_view(
            "define Staff as select distinct e from e in Employees"
        )
        result = optimizer.run_oql(
            "select distinct s.name from s in Staff "
            "where s.salary >= max( select u.salary from u in Staff )"
        )
        assert result == SetValue(["mgr1"])

    def test_range_variable_shadows_view(self, optimizer, hierarchy_db):
        optimizer.define_view(
            "define Adults as select distinct p from p in Persons"
        )
        # 'Adults' as a range variable must win over the view
        result = optimizer.run_oql(
            "select distinct Adults.name from Adults in Managers"
        )
        assert result == SetValue(["mgr1"])

    def test_define_via_run_statement(self, optimizer):
        name = optimizer.run_statement(
            "define V as select distinct p from p in Persons"
        )
        assert name == "V"
        assert optimizer.run_statement("count( select v from v in V )") == 3

    def test_bad_define_rejected(self, optimizer):
        with pytest.raises(Exception):
            optimizer.define_view("define as select p from p in Persons")

    def test_translate_accepts_views_mapping(self, hierarchy_db):
        from repro.oql.parser import parse

        views = {"V": parse("select distinct p from p in Persons")}
        term = parse_and_translate(
            "count( select v from v in V )", hierarchy_db.schema, views
        )
        from repro.calculus.evaluator import evaluate

        assert evaluate(term, hierarchy_db) == 3
