"""Unit tests for the nested relational algebra: operator construction
invariants, the logical evaluator's O1–O7 semantics, and plan printing."""

from __future__ import annotations

import pytest

from repro.algebra.evaluator import PlanEvaluator, evaluate_plan
from repro.algebra.operators import (
    Eval,
    Join,
    Map,
    Nest,
    OuterJoin,
    OuterUnnest,
    Reduce,
    Scan,
    Seed,
    Select,
    Unnest,
    operators,
    transform_plan,
)
from repro.algebra.pretty import plan_signature, pretty_plan
from repro.calculus.terms import BinOp, Const, Proj, Var, const, path, record, var
from repro.data.database import Database
from repro.data.values import NULL, Record, SetValue, is_null


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.add_extent(
        "Emp",
        [
            Record(name="a", dno=1, kids=SetValue([Record(age=5)])),
            Record(name="b", dno=1, kids=SetValue([])),
            Record(name="c", dno=2, kids=SetValue([Record(age=9), Record(age=2)])),
        ],
    )
    database.add_extent("Dept", [Record(dno=1), Record(dno=2), Record(dno=3)])
    return database


def rows(plan, db):
    return list(PlanEvaluator(db).stream(plan))


class TestConstruction:
    def test_join_rejects_overlapping_columns(self):
        with pytest.raises(ValueError, match="share columns"):
            Join(Scan("Emp", "e"), Scan("Dept", "e"), Const(True))

    def test_outer_join_rejects_overlapping_columns(self):
        with pytest.raises(ValueError, match="share columns"):
            OuterJoin(Scan("Emp", "e"), Scan("Dept", "e"), Const(True))

    def test_nest_rejects_unknown_columns(self):
        with pytest.raises(ValueError, match="not produced"):
            Nest(Scan("Emp", "e"), "set", var("e"), ("ghost",), (), "m")

    def test_map_rejects_rebinding(self):
        with pytest.raises(ValueError, match="rebinds"):
            Map(Scan("Emp", "e"), (("e", const(1)),))

    def test_columns(self):
        join = Join(Scan("Emp", "e"), Scan("Dept", "d"), Const(True))
        assert join.columns() == ("e", "d")
        unnest = Unnest(join, path("e", "kids"), "k")
        assert unnest.columns() == ("e", "d", "k")
        nest = Nest(unnest, "sum", const(1), ("e",), ("k",), "m")
        assert nest.columns() == ("e", "m")
        assert Reduce(nest, "set", var("m")).columns() == ()

    def test_unknown_monoid_rejected(self):
        with pytest.raises(KeyError):
            Reduce(Scan("Emp", "e"), "median", var("e"))


class TestStreams:
    def test_seed(self, db):
        assert rows(Seed(), db) == [{}]

    def test_scan(self, db):
        envs = rows(Scan("Dept", "d"), db)
        assert len(envs) == 3
        assert all(set(env) == {"d"} for env in envs)

    def test_select(self, db):
        plan = Select(Scan("Dept", "d"), BinOp("<", path("d", "dno"), const(3)))
        assert len(rows(plan, db)) == 2

    def test_map(self, db):
        plan = Map(Scan("Dept", "d"), (("k", path("d", "dno")),))
        envs = rows(plan, db)
        assert {env["k"] for env in envs} == {1, 2, 3}

    def test_join(self, db):
        plan = Join(
            Scan("Emp", "e"),
            Scan("Dept", "d"),
            BinOp("==", path("e", "dno"), path("d", "dno")),
        )
        assert len(rows(plan, db)) == 3

    def test_outer_join_pads_with_null(self, db):
        plan = OuterJoin(
            Scan("Dept", "d"),
            Scan("Emp", "e"),
            BinOp("==", path("e", "dno"), path("d", "dno")),
        )
        envs = rows(plan, db)
        assert len(envs) == 4  # dept 1 x 2 emps, dept 2 x 1, dept 3 padded
        padded = [env for env in envs if is_null(env["e"])]
        assert len(padded) == 1
        assert padded[0]["d"]["dno"] == 3

    def test_unnest(self, db):
        plan = Unnest(Scan("Emp", "e"), path("e", "kids"), "k")
        assert len(rows(plan, db)) == 3  # employee b contributes nothing

    def test_unnest_with_predicate(self, db):
        plan = Unnest(
            Scan("Emp", "e"), path("e", "kids"), "k",
            BinOp(">", path("k", "age"), const(4)),
        )
        assert len(rows(plan, db)) == 2

    def test_outer_unnest_pads_empty(self, db):
        plan = OuterUnnest(Scan("Emp", "e"), path("e", "kids"), "k")
        envs = rows(plan, db)
        assert len(envs) == 4
        assert sum(1 for env in envs if is_null(env["k"])) == 1

    def test_outer_unnest_pads_when_predicate_never_holds(self, db):
        plan = OuterUnnest(
            Scan("Emp", "e"), path("e", "kids"), "k",
            BinOp(">", path("k", "age"), const(100)),
        )
        envs = rows(plan, db)
        assert len(envs) == 3
        assert all(is_null(env["k"]) for env in envs)

    def test_outer_unnest_over_null_base_pads(self, db):
        inner = OuterJoin(
            Scan("Dept", "d"),
            Scan("Emp", "e"),
            BinOp("==", path("e", "dno"), path("d", "dno")),
        )
        plan = OuterUnnest(inner, path("e", "kids"), "k")
        envs = rows(plan, db)
        dept3 = [env for env in envs if env["d"]["dno"] == 3]
        assert len(dept3) == 1
        assert is_null(dept3[0]["e"]) and is_null(dept3[0]["k"])


class TestNest:
    def test_null_to_zero_conversion(self, db):
        join = OuterJoin(
            Scan("Dept", "d"),
            Scan("Emp", "e"),
            BinOp("==", path("e", "dno"), path("d", "dno")),
        )
        nest = Nest(join, "sum", const(1), ("d",), ("e",), "m")
        envs = rows(nest, db)
        counts = {env["d"]["dno"]: env["m"] for env in envs}
        assert counts == {1: 2, 2: 1, 3: 0}

    def test_set_monoid_zero_is_empty_set(self, db):
        join = OuterJoin(
            Scan("Dept", "d"),
            Scan("Emp", "e"),
            BinOp("==", path("e", "dno"), path("d", "dno")),
        )
        nest = Nest(join, "set", path("e", "name"), ("d",), ("e",), "m")
        envs = rows(nest, db)
        by_dno = {env["d"]["dno"]: env["m"] for env in envs}
        assert by_dno[3] == SetValue()
        assert by_dno[1] == SetValue(["a", "b"])

    def test_all_monoid_zero_is_true(self, db):
        join = OuterJoin(
            Scan("Dept", "d"),
            Scan("Emp", "e"),
            BinOp("==", path("e", "dno"), path("d", "dno")),
        )
        nest = Nest(join, "all", const(False), ("d",), ("e",), "m")
        envs = rows(nest, db)
        values = {env["d"]["dno"]: env["m"] for env in envs}
        assert values == {1: False, 2: False, 3: True}

    def test_nest_predicate_filters_contributions(self, db):
        join = OuterJoin(
            Scan("Dept", "d"),
            Scan("Emp", "e"),
            BinOp("==", path("e", "dno"), path("d", "dno")),
        )
        nest = Nest(
            join, "sum", const(1), ("d",), ("e",), "m",
            pred=BinOp("==", path("e", "name"), const("a")),
        )
        counts = {env["d"]["dno"]: env["m"] for env in rows(nest, db)}
        assert counts == {1: 1, 2: 0, 3: 0}

    def test_group_key_with_multiple_columns(self, db):
        join = Join(Scan("Emp", "e"), Scan("Dept", "d"), Const(True))
        nest = Nest(join, "sum", const(1), ("e", "d"), (), "m")
        envs = rows(nest, db)
        assert len(envs) == 9
        assert all(env["m"] == 1 for env in envs)


class TestRoots:
    def test_reduce_set(self, db):
        plan = Reduce(Scan("Emp", "e"), "set", path("e", "name"))
        assert evaluate_plan(plan, db) == SetValue(["a", "b", "c"])

    def test_reduce_sum_with_predicate(self, db):
        plan = Reduce(
            Scan("Emp", "e"), "sum", const(1),
            BinOp("==", path("e", "dno"), const(1)),
        )
        assert evaluate_plan(plan, db) == 2

    def test_reduce_quantifier(self, db):
        plan = Reduce(Scan("Emp", "e"), "all", BinOp(">", path("e", "dno"), const(0)))
        assert evaluate_plan(plan, db) is True

    def test_eval_root(self, db):
        plan = Eval(Seed(), const(42))
        assert evaluate_plan(plan, db) == 42

    def test_eval_requires_single_row(self, db):
        plan = Eval(Scan("Emp", "e"), const(1))
        with pytest.raises(Exception, match="exactly one"):
            evaluate_plan(plan, db)

    def test_stream_root_rejected(self, db):
        with pytest.raises(TypeError, match="rooted at Reduce"):
            evaluate_plan(Scan("Emp", "e"), db)


class TestPlanUtilities:
    def _plan(self):
        return Reduce(
            Nest(
                OuterJoin(Scan("Dept", "d"), Scan("Emp", "e"), Const(True)),
                "sum",
                const(1),
                ("d",),
                ("e",),
                "m",
            ),
            "set",
            var("m"),
        )

    def test_operators_preorder(self):
        kinds = [type(op).__name__ for op in operators(self._plan())]
        assert kinds == ["Reduce", "Nest", "OuterJoin", "Scan", "Scan"]

    def test_plan_signature(self):
        assert plan_signature(self._plan()) == (
            "reduce(nest(outer-join(scan, scan)))"
        )

    def test_pretty_plan_mentions_operators(self):
        text = pretty_plan(self._plan())
        assert "reduce[" in text
        assert "nest[+" in text
        assert "outer-join[" in text
        assert "scan[d <- Dept]" in text

    def test_transform_plan_identity(self):
        plan = self._plan()
        assert transform_plan(plan, lambda p: p) == plan

    def test_transform_plan_replaces(self):
        plan = self._plan()

        def swap(node):
            if isinstance(node, Scan) and node.extent == "Emp":
                return Scan("Emp2", node.var)
            return node

        replaced = transform_plan(plan, swap)
        extents = [op.extent for op in operators(replaced) if isinstance(op, Scan)]
        assert "Emp2" in extents
