"""Golden plan-shape regression tests.

For every corpus query we pin the *optimized* plan's operator skeleton.
A change here is not necessarily a bug — optimizer improvements legitimately
change shapes — but it must be a conscious decision: regenerate with

    python tests/test_plan_golden.py --regen

and review the diff of ``tests/golden_plans.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from corpus import CORPUS
from repro.algebra.pretty import plan_signature
from repro.core.optimizer import Optimizer

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_plans.json"


def _database(family: str):
    # Sizes are irrelevant to plan shapes; use small fixed instances.
    from repro.data.datagen import (
        ab_database,
        auction_database,
        company_database,
        travel_database,
        university_database,
    )

    makers = {
        "company": lambda: company_database(10, 3, seed=1),
        "university": lambda: university_database(8, 5, seed=1),
        "travel": lambda: travel_database(3, 2, seed=1),
        "ab": lambda: ab_database(5, 7, seed=1),
        "auction": lambda: auction_database(8, 6, seed=1),
    }
    return makers[family]()


def compute_signatures() -> dict[str, str]:
    signatures = {}
    databases: dict[str, object] = {}
    for query in CORPUS:
        db = databases.setdefault(query.family, _database(query.family))
        compiled = Optimizer(db).compile_oql(query.oql)
        signatures[query.name] = plan_signature(compiled.optimized)
    return signatures


def load_golden() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())


def test_golden_file_exists():
    assert GOLDEN_PATH.exists(), (
        "golden plan file missing; regenerate with "
        "`python tests/test_plan_golden.py --regen`"
    )


@pytest.mark.parametrize("query", CORPUS, ids=lambda q: q.name)
def test_plan_shape_is_stable(query):
    golden = load_golden()
    db = _database(query.family)
    compiled = Optimizer(db).compile_oql(query.oql)
    assert query.name in golden, (
        f"no golden entry for {query.name}; regenerate the golden file"
    )
    assert plan_signature(compiled.optimized) == golden[query.name]


def test_no_stale_golden_entries():
    golden = load_golden()
    names = {query.name for query in CORPUS}
    stale = set(golden) - names
    assert not stale, f"golden entries for removed queries: {sorted(stale)}"


if __name__ == "__main__":
    if "--regen" in sys.argv:
        GOLDEN_PATH.write_text(json.dumps(compute_signatures(), indent=1, sort_keys=True) + "\n")
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
