"""Unit tests for the normalization algorithm (paper Figure 4, rules N1–N9),
predicate normalization, and canonicalization."""

from __future__ import annotations

import pytest

from repro.calculus.evaluator import evaluate
from repro.calculus.terms import (
    Apply,
    BinOp,
    Comprehension,
    Const,
    Extent,
    Filter,
    Generator,
    If,
    Lambda,
    Let,
    Merge,
    Not,
    Proj,
    Singleton,
    Var,
    Zero,
    comprehension,
    const,
    path,
    record,
    var,
)
from repro.core.normalization import (
    canonicalize,
    normalize,
    normalize_predicates,
    prepare,
)
from repro.data.database import Database
from repro.data.values import Record, SetValue


@pytest.fixture()
def db() -> Database:
    database = Database()
    database.add_extent("X", [Record(a=1), Record(a=2), Record(a=3)])
    database.add_extent("Y", [Record(b=2), Record(b=3)])
    return database


def assert_preserves(term, db):
    """Normalization must be meaning-preserving."""
    assert evaluate(normalize(term), db) == evaluate(term, db)


class TestN1N2:
    def test_beta_reduction(self):
        term = Apply(Lambda("x", BinOp("+", var("x"), const(1))), const(2))
        assert normalize(term) == Const(3) or normalize(term) == BinOp(
            "+", Const(2), Const(1)
        )

    def test_record_projection_folds(self):
        term = Proj(record(a=const(1), b=const(2)), "b")
        assert normalize(term) == Const(2)

    def test_let_inlining(self):
        term = Let("x", const(5), BinOp("+", var("x"), var("x")))
        # inlining plus constant folding
        assert normalize(term) == Const(10)

    def test_constant_folding(self):
        assert normalize(BinOp("*", const(6), const(7))) == Const(42)
        assert normalize(BinOp("<", const(1), const(2))) == Const(True)
        # division by zero must stay a runtime matter
        term = BinOp("/", const(1), const(0))
        assert normalize(term) == term


class TestN3ConditionalDomain:
    def test_splits_into_merge(self, db):
        term = comprehension(
            "set",
            var("v"),
            ("v", If(var("p"), Extent("X"), Extent("Y"))),
        )
        result = normalize(term)
        assert isinstance(result, Merge)
        # semantics under both truth values of p
        for p in (True, False):
            lhs = evaluate(term, db, {"p": p})
            rhs = evaluate(result, db, {"p": p})
            assert lhs == rhs


class TestN4N5:
    def test_zero_domain_collapses(self):
        term = comprehension("sum", var("v"), ("v", Zero("set")))
        assert normalize(term) == Zero("sum")

    def test_false_filter_collapses(self):
        term = comprehension("set", var("v"), ("v", Extent("X")), const(False))
        assert normalize(term) == Zero("set")

    def test_singleton_domain_binds(self, db):
        term = comprehension(
            "set", BinOp("+", var("v"), const(1)), ("v", Singleton("set", const(41)))
        )
        assert normalize(term) == Singleton("set", Const(42)) or evaluate(
            normalize(term), db
        ) == SetValue([42])

    def test_singleton_substitutes_into_later_domains(self, db):
        term = comprehension(
            "sum",
            const(1),
            ("v", Singleton("set", Extent("X"))),
            ("w", var("v")),
        )
        assert_preserves(term, db)
        assert evaluate(normalize(term), db) == 3


class TestN6MergeDomain:
    def test_split_for_idempotent_outer(self, db):
        term = comprehension(
            "set", path("v", "a"), ("v", Merge("set", Extent("X"), Extent("X")))
        )
        assert_preserves(term, db)

    def test_not_split_for_set_into_sum(self, db):
        # +{1 | v <- X U X} must count distinct elements (3), not 6.
        term = comprehension(
            "sum", const(1), ("v", Merge("set", Extent("X"), Extent("X")))
        )
        result = normalize(term)
        assert evaluate(result, db) == 3

    def test_bag_merge_splits_into_any_outer(self, db):
        term = comprehension(
            "sum",
            const(1),
            ("v", Merge("bag", Singleton("bag", const(7)), Singleton("bag", const(7)))),
        )
        assert evaluate(normalize(term), db) == 2


class TestN7Flattening:
    def test_flattens_nested_set_domain(self, db):
        inner = comprehension("set", path("x", "a"), ("x", Extent("X")))
        term = comprehension("set", BinOp("+", var("v"), const(1)), ("v", inner))
        result = normalize(term)
        assert isinstance(result, Comprehension)
        gens = result.generators()
        assert len(gens) == 1 and gens[0].domain == Extent("X")
        assert_preserves(term, db)

    def test_does_not_flatten_set_into_sum(self, db):
        # sum over a set comprehension that collapses duplicates: 0*a yields
        # {0}, so the sum is 0, not 0+0+0.
        inner = comprehension(
            "set", BinOp("*", path("x", "a"), const(0)), ("x", Extent("X"))
        )
        term = comprehension("sum", var("v"), ("v", inner))
        result = normalize(term)
        assert evaluate(result, db) == 0
        # the nested comprehension must survive for the unnester
        assert any(
            isinstance(g.domain, Comprehension) for g in result.generators()
        )

    def test_flattens_bag_into_sum(self, db):
        inner = comprehension(
            "bag", BinOp("*", path("x", "a"), const(0)), ("x", Extent("X"))
        )
        term = comprehension("sum", const(1), ("v", inner))
        result = normalize(term)
        assert evaluate(result, db) == 3
        assert all(
            not isinstance(g.domain, Comprehension) for g in result.generators()
        )

    def test_variable_capture_avoided(self, db):
        # Both comprehensions use the variable name "x".
        inner = comprehension("set", path("x", "a"), ("x", Extent("X")))
        term = comprehension(
            "set",
            BinOp("+", var("x"), path("y", "b")),
            ("y", Extent("Y")),
            ("x", inner),
        )
        assert_preserves(term, db)


class TestN8Existential:
    def test_unnests_some_filter(self, db):
        some = comprehension(
            "some", const(True), ("y", Extent("Y")),
            BinOp("==", path("x", "a"), path("y", "b")),
        )
        term = comprehension("set", path("x", "a"), ("x", Extent("X")), some)
        result = normalize(term)
        assert isinstance(result, Comprehension)
        assert len(result.generators()) == 2, "existential became a generator"
        assert evaluate(result, db) == SetValue([2, 3])

    def test_not_unnested_into_sum(self, db):
        # +{1 | x <- X, some{...}} would double-count if naively flattened.
        some = comprehension(
            "some", const(True), ("y", Extent("Y")),
            BinOp(">=", path("y", "b"), const(0)),
        )
        term = comprehension("sum", const(1), ("x", Extent("X")), some)
        result = normalize(term)
        assert evaluate(result, db) == 3


class TestN9HeadFlattening:
    def test_sum_of_sums(self, db):
        inner = comprehension("sum", path("y", "b"), ("y", Extent("Y")))
        term = comprehension("sum", inner, ("x", Extent("X")))
        result = normalize(term)
        assert isinstance(result, Comprehension)
        assert len(result.generators()) == 2
        assert evaluate(result, db) == 15  # 3 * (2 + 3)

    def test_set_of_sets_not_flattened(self, db):
        inner = comprehension("set", path("y", "b"), ("y", Extent("Y")))
        term = comprehension("set", inner, ("x", Extent("X")))
        result = normalize(term)
        # A set whose elements are sets must stay nested.
        assert evaluate(result, db) == SetValue([SetValue([2, 3])])


class TestSomeHeadToFilter:
    def test_rewrite(self, db):
        term = comprehension(
            "some", BinOp(">", path("y", "b"), const(2)), ("y", Extent("Y"))
        )
        result = normalize(term)
        assert isinstance(result, Comprehension)
        assert result.head == Const(True)
        assert evaluate(result, db) is True

    def test_all_head_not_rewritten(self, db):
        term = comprehension(
            "all", BinOp(">", path("y", "b"), const(2)), ("y", Extent("Y"))
        )
        result = normalize(term)
        assert isinstance(result, Comprehension)
        assert result.head != Const(True)
        assert evaluate(result, db) is False


class TestHotelExample:
    def test_paper_normalized_form(self, db):
        """The Section 2 example must normalize to a single flat
        comprehension over five path/extent generators."""
        from repro.data.datagen import travel_database

        inner_hotels = comprehension(
            "set", var("h"), ("c", Extent("Cities")), ("h", path("c", "hotels")),
            BinOp("==", path("c", "name"), const("Arlington")),
        )
        texas = comprehension(
            "set", path("t", "name"), ("s", Extent("States")),
            ("t", path("s", "attractions")),
            BinOp("==", path("s", "name"), const("Texas")),
        )
        query = comprehension(
            "set", path("hotel", "price"),
            ("hotel", inner_hotels),
            comprehension(
                "some", BinOp("==", path("r", "bed_num"), const(3)),
                ("r", path("hotel", "rooms")),
            ),
            comprehension(
                "some", BinOp("==", var("en"), path("hotel", "name")), ("en", texas)
            ),
        )
        result = prepare(query)
        assert isinstance(result, Comprehension)
        assert len(result.generators()) == 5
        assert len(result.filters()) == 1  # single conjoined predicate
        travel = travel_database()
        assert evaluate(result, travel) == evaluate(query, travel)
        assert len(evaluate(result, travel)) > 0


class TestPredicateNormalization:
    def test_double_negation(self):
        assert normalize_predicates(Not(Not(var("p")))) == Var("p")

    def test_demorgan_and(self):
        term = Not(BinOp("and", var("p"), var("q")))
        assert normalize_predicates(term) == BinOp("or", Not(Var("p")), Not(Var("q")))

    def test_demorgan_or(self):
        term = Not(BinOp("or", var("p"), var("q")))
        assert normalize_predicates(term) == BinOp("and", Not(Var("p")), Not(Var("q")))

    def test_negated_comparison_flips(self):
        term = Not(BinOp("<", var("a"), var("b")))
        assert normalize_predicates(term) == BinOp(">=", Var("a"), Var("b"))

    def test_negated_constant(self):
        assert normalize_predicates(Not(Const(True))) == Const(False)

    def test_quantifier_duality(self):
        some = comprehension("some", var("p"), ("x", Extent("X")))
        result = normalize_predicates(Not(some))
        assert isinstance(result, Comprehension)
        assert result.monoid_name == "all"
        assert result.head == Not(Var("p"))

        all_comp = comprehension("all", var("p"), ("x", Extent("X")))
        result = normalize_predicates(Not(all_comp))
        assert result.monoid_name == "some"


class TestCanonicalize:
    def test_filters_move_to_end(self):
        term = Comprehension(
            "set",
            var("y"),
            (
                Generator("x", Extent("X")),
                Filter(BinOp(">", path("x", "a"), const(0))),
                Generator("y", Extent("Y")),
            ),
        )
        result = canonicalize(term)
        quals = result.qualifiers
        assert isinstance(quals[0], Generator)
        assert isinstance(quals[1], Generator)
        assert isinstance(quals[2], Filter)

    def test_filters_conjoined(self):
        term = comprehension(
            "set", var("x"), ("x", Extent("X")), var("p"), var("q")
        )
        result = canonicalize(term)
        assert len(result.filters()) == 1

    def test_canonicalize_preserves_semantics(self, db):
        term = Comprehension(
            "sum",
            path("x", "a"),
            (
                Generator("x", Extent("X")),
                Filter(BinOp(">", path("x", "a"), const(1))),
                Generator("y", Extent("Y")),
                Filter(BinOp("==", path("x", "a"), path("y", "b"))),
            ),
        )
        assert evaluate(canonicalize(term), db) == evaluate(term, db)


class TestFixpoint:
    def test_normalize_is_idempotent(self, db):
        inner = comprehension("set", path("x", "a"), ("x", Extent("X")))
        term = comprehension("set", BinOp("+", var("v"), const(1)), ("v", inner))
        once = normalize(term)
        assert normalize(once) == once

    def test_boolean_simplification(self):
        term = BinOp("and", Const(True), var("p"))
        assert normalize(term) == Var("p")
        term = BinOp("or", var("p"), Const(True))
        assert normalize(term) == Const(True)
        term = BinOp("and", var("p"), Const(False))
        assert normalize(term) == Const(False)
